// Package serve is Sperke's horizontally-sharded serving layer: the
// piece of the ROADMAP's "heavy traffic from millions of users" story
// that makes one origin cheap to hit. Two components live here:
//
//   - Store, a sharded chunk cache: N power-of-two lock-striped shards
//     keyed by FNV-1a of (video, quality, tile, layer, index), each with
//     its own LRU list and a slice of the global byte budget, plus
//     singleflight de-duplication so a thundering herd of cold requests
//     for the same chunk synthesizes its body exactly once. Cached
//     bodies are sealed exact-size copies served read-only; misses can
//     build through pooled scratch (NewAppendStore) so the cold path
//     allocates only what the cache retains.
//
//   - Engine, a worker-pool session driver: K simulated viewers (each a
//     core.Session, optionally doubled by a dash.Client fetching the
//     same chunks over real HTTP) run concurrently on a bounded pool
//     while per-session seeded determinism is preserved, reporting
//     aggregate QoE and p50/p95/p99 fetch latency through internal/obs.
//
// Everything in this package is deterministic on the simulation side:
// per-session QoE is a pure function of the session seed regardless of
// worker count. The only wall-clock reads are the HTTP fetch-latency
// measurements, taken through the obs.Wall seam sperke-vet allowlists.
package serve

import (
	"container/list"
	"context"
	"fmt"
	"io"
	"sync"

	"sperke/internal/obs"
)

// ChunkKey addresses one servable chunk body: an AVC chunk or a single
// SVC layer of a tile at one interval of one video.
type ChunkKey struct {
	Video   string
	Quality int
	Tile    int
	Index   int
	Layer   bool
}

func (k ChunkKey) String() string {
	form := "avc"
	if k.Layer {
		form = "svc-layer"
	}
	return fmt.Sprintf("%s/q%d/t%d/i%d(%s)", k.Video, k.Quality, k.Tile, k.Index, form)
}

// hash folds the key with FNV-1a so shard assignment is stable across
// processes and Go versions.
func (k ChunkKey) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	step := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < len(k.Video); i++ {
		step(k.Video[i])
	}
	for _, v := range [3]int{k.Quality, k.Tile, k.Index} {
		u := uint64(v)
		for s := 0; s < 64; s += 8 {
			step(byte(u >> s))
		}
	}
	if k.Layer {
		step(1)
	} else {
		step(0)
	}
	return h
}

// Synth produces a chunk body for a key on a cache miss. It must be
// pure: the same key always yields the same bytes, so a cached body is
// indistinguishable from a fresh one. The store seals the result into
// an exact-size private copy before caching, so a Synth may retain or
// reuse the slice it returned.
type Synth func(key ChunkKey) ([]byte, error)

// AppendSynth is the allocation-light miss path: it appends the chunk
// body for key to dst (typically pooled scratch owned by the store) and
// returns the extended slice, or dst unchanged on error. Like Synth it
// must be pure. The store copies the built bytes out of dst before
// reusing it, so implementations need no defensive copies.
type AppendSynth func(dst []byte, key ChunkKey) ([]byte, error)

// WriterSynth is the zero-materialization miss path: Size reports the
// exact byte length of a key's body and Write streams those bytes into
// w. The store allocates the sealed cache copy up front at exactly
// Size bytes and streams straight into it — no scratch buffer, no
// post-build copy, one body-sized allocation per miss (the bytes the
// cache retains). Both functions must be pure, and Write must emit
// exactly Size bytes; a mismatch fails the Get rather than caching a
// half-built body.
type WriterSynth struct {
	Size  func(key ChunkKey) (int, error)
	Write func(w io.Writer, key ChunkKey) error
}

// CtxSynth is the cancellation-aware miss path: like Synth it must be
// pure on success (the same key always yields the same bytes), but it
// observes ctx and may abort early with ctx.Err() when every caller
// sharing the synthesis has departed. The store runs each flight on
// its own context (see newFlightCtx) so one canceled viewer cannot
// poison the body other viewers are waiting on: the flight is canceled
// only when its interest count — leader plus waiters — drops to zero.
type CtxSynth func(ctx context.Context, key ChunkKey) ([]byte, error)

// CtxWriterSynth combines the writer-first and cancellation-aware miss
// paths: Size reports the exact body length, Write streams it on the
// flight's shared context (see CtxSynth for the cancellation contract,
// WriterSynth for the sizing one). Misses stream straight into the
// exact-size sealed allocation and abort mid-stream when the last
// interested caller departs.
type CtxWriterSynth struct {
	Size  func(key ChunkKey) (int, error)
	Write func(ctx context.Context, w io.Writer, key ChunkKey) error
}

// StoreConfig tunes a Store. The zero value gives 16 shards and a
// 256 MiB budget with no metrics.
type StoreConfig struct {
	// Shards is the shard count, rounded up to a power of two; 0
	// defaults to 16.
	Shards int
	// BudgetBytes is the global cache budget, partitioned evenly across
	// shards (each shard evicts its own LRU tail past its slice, so the
	// whole store never exceeds the budget); 0 defaults to 256 MiB.
	BudgetBytes int64
	// Obs, when set, records hits, misses, evictions, uncacheable
	// oversized bodies, singleflight-shared synths and resident bytes
	// (serve.store.*). Nil disables metrics.
	Obs *obs.Registry
}

// flight is one in-progress synthesis; concurrent callers for the same
// key wait on done instead of synthesizing again. interest counts the
// callers — leader plus waiters — still wanting the result; on a
// context-aware store each departure decrements it under the shard
// lock, and the flight's own context is canceled when it reaches zero
// (see Store.abandon).
type flight struct {
	done     chan struct{}
	body     []byte
	err      error
	interest int
	ctx      context.Context
	cancel   context.CancelFunc
}

// newFlightCtx mints the context a synthesis flight runs on. It is a
// fresh root by design — the flight outlives any single caller and is
// shared by everyone who arrives while it is in progress — and is the
// allowlisted ctxflow seam for this package: cancellation still
// reaches the flight, but only when the last interested caller
// departs.
func newFlightCtx() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background())
}

// entry is one cached body on a shard's LRU list.
type entry struct {
	key  ChunkKey
	body []byte
}

// shard is one lock stripe: its own map, LRU list, byte accounting and
// in-flight synthesis table.
type shard struct {
	mu       sync.Mutex
	entries  map[ChunkKey]*list.Element
	lru      list.List // front = most recently used
	bytes    int64
	budget   int64
	inflight map[ChunkKey]*flight
}

// storeMetrics caches the store's instruments; nil fields no-op.
type storeMetrics struct {
	hits        *obs.Counter
	misses      *obs.Counter
	evictions   *obs.Counter
	uncacheable *obs.Counter
	shared      *obs.Counter
	bytes       *obs.Gauge
}

// Store is the sharded chunk cache. Safe for concurrent use. Bodies
// returned by Get are shared with the cache and must be treated as
// read-only (see Get for the exact contract).
type Store struct {
	shards []*shard
	mask   uint64
	synth  Synth
	// appendSynth, when set, replaces synth: misses build into pooled
	// scratch and only the sealed copy survives the synthesis.
	appendSynth AppendSynth
	// writerSynth, when set, replaces both: misses stream directly into
	// the exact-size sealed buffer.
	writerSynth WriterSynth
	// ctxSynth, when set, is the cancellation-aware miss path: each
	// flight runs on its own context, canceled when every sharing
	// caller has departed.
	ctxSynth CtxSynth
	// ctxWriter, when set, is the cancellation-aware writer-first miss
	// path: per-flight context and exact-size streaming combined.
	ctxWriter CtxWriterSynth
	// scratch recycles miss-path build buffers
	// (serve.store.pool_hits / pool_misses).
	scratch *obs.BufferPool
	met     storeMetrics
}

// ctxAware reports whether misses run on a per-flight context.
func (s *Store) ctxAware() bool {
	return s.ctxSynth != nil || s.ctxWriter.Write != nil
}

// maxPooledScratch caps recycled scratch capacity; larger buffers are
// dropped on Put instead of pinning memory.
const maxPooledScratch = 8 << 20

// Option configures a Store built by New. Exactly one synthesis option
// (WithSynth, WithAppendSynth, WithWriterSynth, WithCtxSynth or
// WithCtxWriterSynth) must be supplied; the sizing options are
// orthogonal and optional. Nil options are ignored.
type Option func(*storeOptions)

type storeOptions struct {
	cfg         StoreConfig
	synth       Synth
	appendSynth AppendSynth
	writerSynth WriterSynth
	ctxSynth    CtxSynth
	ctxWriter   CtxWriterSynth
}

// WithSynth sets the plain miss path: build the whole body, let the
// store seal a private exact-size copy.
func WithSynth(synth Synth) Option {
	return func(o *storeOptions) { o.synth = synth }
}

// WithAppendSynth sets the allocation-light miss path: build into the
// store's pooled scratch so only the sealed copy survives a miss.
func WithAppendSynth(synth AppendSynth) Option {
	return func(o *storeOptions) { o.appendSynth = synth }
}

// WithWriterSynth sets the writer-first miss path: misses allocate the
// sealed body at its exact final size and stream into it, skipping
// both the scratch buffer and the sealing copy of the append path.
// This is the writer-first single source of truth — the same Write
// that streams a body to a socket fills the cache, so cached and
// streamed bytes cannot diverge.
func WithWriterSynth(ws WriterSynth) Option {
	return func(o *storeOptions) { o.writerSynth = ws }
}

// WithCtxSynth sets the cancellation-aware miss path. Misses
// synthesize on a per-flight context: the flight is shared
// singleflight-style by every concurrent caller for the key, and is
// canceled only when the last of them departs, so a canceled viewer
// aborts an origin fetch nobody else wants without poisoning a body
// other viewers are waiting on.
func WithCtxSynth(synth CtxSynth) Option {
	return func(o *storeOptions) { o.ctxSynth = synth }
}

// WithCtxWriterSynth sets the combined miss path: per-flight
// cancellation and exact-size streaming in one synthesizer.
func WithCtxWriterSynth(ws CtxWriterSynth) Option {
	return func(o *storeOptions) { o.ctxWriter = ws }
}

// WithShards sets the shard count (rounded up to a power of two);
// values <= 0 keep the default of 16.
func WithShards(n int) Option {
	return func(o *storeOptions) { o.cfg.Shards = n }
}

// WithBudget sets the global cache budget in bytes, partitioned evenly
// across shards; values <= 0 keep the default of 256 MiB.
func WithBudget(b int64) Option {
	return func(o *storeOptions) { o.cfg.BudgetBytes = b }
}

// WithObs wires the store's serve.store.* instruments into a registry.
func WithObs(r *obs.Registry) Option {
	return func(o *storeOptions) { o.cfg.Obs = r }
}

// withStoreConfig applies a legacy StoreConfig wholesale — the bridge
// the deprecated constructors ride.
func withStoreConfig(cfg StoreConfig) Option {
	return func(o *storeOptions) { o.cfg = cfg }
}

// New builds a store from functional options. Exactly one synthesis
// option selects the miss path; supplying none (or several) is a
// programming error and panics, matching the legacy constructors'
// nil-synth behavior.
func New(opts ...Option) *Store {
	var o storeOptions
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	set := 0
	if o.synth != nil {
		set++
	}
	if o.appendSynth != nil {
		set++
	}
	if o.writerSynth.Size != nil || o.writerSynth.Write != nil {
		if o.writerSynth.Size == nil || o.writerSynth.Write == nil {
			panic("serve: WithWriterSynth needs both Size and Write")
		}
		set++
	}
	if o.ctxSynth != nil {
		set++
	}
	if o.ctxWriter.Size != nil || o.ctxWriter.Write != nil {
		if o.ctxWriter.Size == nil || o.ctxWriter.Write == nil {
			panic("serve: WithCtxWriterSynth needs both Size and Write")
		}
		set++
	}
	if set != 1 {
		panic("serve: New needs exactly one synthesis option (WithSynth, WithAppendSynth, WithWriterSynth, WithCtxSynth or WithCtxWriterSynth)")
	}
	s := newStore(o.synth, o.appendSynth, o.cfg)
	s.writerSynth = o.writerSynth
	s.ctxSynth = o.ctxSynth
	s.ctxWriter = o.ctxWriter
	return s
}

// NewStore builds a store over a synthesis function.
//
// Deprecated: use New(WithSynth(synth), ...).
func NewStore(synth Synth, cfg StoreConfig) *Store {
	if synth == nil {
		panic("serve: NewStore needs a Synth")
	}
	return New(WithSynth(synth), withStoreConfig(cfg))
}

// NewAppendStore builds a store over an appending synthesis function:
// cache misses build into a pooled scratch buffer and seal an
// exact-size immutable copy into the cache, so the steady-state cold
// path allocates only the bytes that are actually retained.
//
// Deprecated: use New(WithAppendSynth(synth), ...).
func NewAppendStore(synth AppendSynth, cfg StoreConfig) *Store {
	if synth == nil {
		panic("serve: NewAppendStore needs an AppendSynth")
	}
	return New(WithAppendSynth(synth), withStoreConfig(cfg))
}

// NewWriterStore builds a store over a sized streaming synthesizer
// (see WithWriterSynth for the contract).
//
// Deprecated: use New(WithWriterSynth(ws), ...).
func NewWriterStore(ws WriterSynth, cfg StoreConfig) *Store {
	if ws.Size == nil || ws.Write == nil {
		panic("serve: NewWriterStore needs both Size and Write")
	}
	return New(WithWriterSynth(ws), withStoreConfig(cfg))
}

// NewCtxStore builds a store over a cancellation-aware synthesis
// function (see WithCtxSynth for the contract).
//
// Deprecated: use New(WithCtxSynth(synth), ...).
func NewCtxStore(synth CtxSynth, cfg StoreConfig) *Store {
	if synth == nil {
		panic("serve: NewCtxStore needs a CtxSynth")
	}
	return New(WithCtxSynth(synth), withStoreConfig(cfg))
}

func newStore(synth Synth, appendSynth AppendSynth, cfg StoreConfig) *Store {
	n := cfg.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so shard selection is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	budget := cfg.BudgetBytes
	if budget <= 0 {
		budget = 256 << 20
	}
	per := budget / int64(p)
	if per < 1 {
		per = 1
	}
	s := &Store{
		shards:      make([]*shard, p),
		mask:        uint64(p - 1),
		synth:       synth,
		appendSynth: appendSynth,
		met: storeMetrics{
			hits:        cfg.Obs.Counter("serve.store.hits"),
			misses:      cfg.Obs.Counter("serve.store.misses"),
			evictions:   cfg.Obs.Counter("serve.store.evictions"),
			uncacheable: cfg.Obs.Counter("serve.store.uncacheable"),
			shared:      cfg.Obs.Counter("serve.store.singleflight_shared"),
			bytes:       cfg.Obs.Gauge("serve.store.bytes"),
		},
	}
	if appendSynth != nil {
		s.scratch = obs.NewBufferPool(cfg.Obs, "serve.store", maxPooledScratch)
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			entries:  make(map[ChunkKey]*list.Element),
			budget:   per,
			inflight: make(map[ChunkKey]*flight),
		}
	}
	return s
}

// Shards reports the shard count (always a power of two).
func (s *Store) Shards() int { return len(s.shards) }

func (s *Store) shard(k ChunkKey) *shard { return s.shards[k.hash()&s.mask] }

// Get returns the body for key, synthesizing it on a miss. Concurrent
// callers for the same cold key share one synthesis (singleflight); the
// non-leading callers block until the leader finishes or their context
// expires. On a context-aware store (NewCtxStore) the flight itself is
// canceled once every sharing caller has departed, so an origin fetch
// nobody is waiting on anymore aborts instead of completing into the
// void; one caller's cancellation never disturbs a flight others still
// want.
//
// Immutability contract: the returned slice is the cache's own sealed
// copy, shared by every caller that asks for the same key — it is
// strictly read-only. Callers must not write through it, reslice it
// beyond its length, or append to it in place; mutating it corrupts
// the body every later viewer receives. The store seals bodies as
// exact-size copies (len == cap), so an accidental append reallocates
// instead of scribbling on cached bytes, and pooled scratch used
// during synthesis never aliases what Get returns.
func (s *Store) Get(ctx context.Context, key ChunkKey) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sh := s.shard(key)
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		sh.lru.MoveToFront(el)
		body := el.Value.(*entry).body
		sh.mu.Unlock()
		s.met.hits.Inc()
		return body, nil
	}
	if fl, ok := sh.inflight[key]; ok {
		fl.interest++
		sh.mu.Unlock()
		s.met.shared.Inc()
		select {
		case <-fl.done:
			return fl.body, fl.err
		case <-ctx.Done():
			s.abandon(sh, key, fl)
			return nil, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{}), interest: 1}
	if s.ctxAware() {
		fl.ctx, fl.cancel = newFlightCtx()
	}
	sh.inflight[key] = fl
	sh.mu.Unlock()

	s.met.misses.Inc()
	if s.ctxAware() {
		// The leader's departure is its caller's cancellation: release
		// its interest then, so a flight nobody wants anymore aborts the
		// synthesis instead of running to completion at the origin.
		stop := context.AfterFunc(ctx, func() { s.abandon(sh, key, fl) })
		if s.ctxWriter.Write != nil {
			fl.body, fl.err = s.synthesizeStreamedCtx(fl.ctx, key)
		} else {
			fl.body, fl.err = s.ctxSynth(fl.ctx, key)
		}
		stop()
	} else {
		fl.body, fl.err = s.synthesize(key)
	}

	sh.mu.Lock()
	if sh.inflight[key] == fl {
		delete(sh.inflight, key)
	}
	if fl.err == nil {
		s.insertLocked(sh, key, fl.body)
	}
	sh.mu.Unlock()
	close(fl.done)
	if fl.cancel != nil {
		fl.cancel()
	}
	return fl.body, fl.err
}

// abandon releases one caller's interest in a flight. When the last
// interested caller departs from a context-aware flight that is still
// in progress, the flight is deregistered (so late arrivals start
// fresh instead of joining a dying flight) and its context canceled,
// aborting the synthesis. Flights on non-context stores are never
// aborted — their synthesis cannot observe cancellation — matching the
// pre-context behavior.
func (s *Store) abandon(sh *shard, key ChunkKey, fl *flight) {
	sh.mu.Lock()
	fl.interest--
	dying := fl.cancel != nil && fl.interest == 0 && sh.inflight[key] == fl
	if dying {
		delete(sh.inflight, key)
	}
	sh.mu.Unlock()
	if dying {
		fl.cancel()
	}
}

// synthesize runs the miss path and seals the result: the body handed
// to callers and to insertLocked is always a private exact-size slice
// (len == cap), never the synth's own slice or pooled scratch. The
// append path builds into recycled scratch so the only per-miss
// allocation that survives is the sealed copy itself; the writer path
// streams into the sealed allocation directly.
func (s *Store) synthesize(key ChunkKey) ([]byte, error) {
	if s.writerSynth.Write != nil {
		return s.synthesizeStreamed(key)
	}
	if s.appendSynth == nil {
		body, err := s.synth(key)
		if err != nil {
			return nil, err
		}
		return seal(body), nil
	}
	scratch := s.scratch.Get()
	built, err := s.appendSynth((*scratch)[:0], key)
	*scratch = built[:0]
	if err != nil {
		s.scratch.Put(scratch)
		return nil, err
	}
	sealed := seal(built)
	s.scratch.Put(scratch)
	return sealed, nil
}

// writerPool recycles the slice-backed writers the streamed miss path
// hands to WriterSynth.Write, keeping the per-miss allocation count at
// the sealed body alone.
var writerPool = sync.Pool{New: func() any { return new(sliceWriter) }}

// sliceWriter adapts an append destination to io.Writer; Write never
// fails.
type sliceWriter struct{ buf []byte }

func (sw *sliceWriter) Write(p []byte) (int, error) {
	sw.buf = append(sw.buf, p...)
	return len(p), nil
}

// synthesizeStreamed is the writer-first miss path: one exact-size
// allocation, filled by the synthesizer's stream, already sealed
// (len == cap) when it goes into the cache.
func (s *Store) synthesizeStreamed(key ChunkKey) ([]byte, error) {
	n, err := s.writerSynth.Size(key)
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("serve: sized synth for %s reports negative length %d", key, n)
	}
	sw := writerPool.Get().(*sliceWriter)
	sw.buf = make([]byte, 0, n)
	err = s.writerSynth.Write(sw, key)
	body := sw.buf
	sw.buf = nil
	writerPool.Put(sw)
	if err != nil {
		return nil, err
	}
	if len(body) != n {
		return nil, fmt.Errorf("serve: sized synth for %s wrote %d bytes, want %d", key, len(body), n)
	}
	return body, nil
}

// synthesizeStreamedCtx is synthesizeStreamed on the flight's shared
// context: same exact-size sealed allocation, but the synthesizer may
// abort mid-stream once every interested caller has departed.
func (s *Store) synthesizeStreamedCtx(ctx context.Context, key ChunkKey) ([]byte, error) {
	n, err := s.ctxWriter.Size(key)
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("serve: sized synth for %s reports negative length %d", key, n)
	}
	sw := writerPool.Get().(*sliceWriter)
	sw.buf = make([]byte, 0, n)
	err = s.ctxWriter.Write(ctx, sw, key)
	body := sw.buf
	sw.buf = nil
	writerPool.Put(sw)
	if err != nil {
		return nil, err
	}
	if len(body) != n {
		return nil, fmt.Errorf("serve: sized synth for %s wrote %d bytes, want %d", key, len(body), n)
	}
	return body, nil
}

// seal copies b into an exactly-sized slice (len == cap).
func seal(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// insertLocked caches a freshly synthesized body, evicting the shard's
// LRU tail past its budget slice. A body larger than the whole slice is
// served but never cached (keep-zero, matching the player caches'
// refusal to hold something that would immediately evict everything).
func (s *Store) insertLocked(sh *shard, key ChunkKey, body []byte) {
	size := int64(len(body))
	if size > sh.budget {
		s.met.uncacheable.Inc()
		return
	}
	el := sh.lru.PushFront(&entry{key: key, body: body})
	sh.entries[key] = el
	sh.bytes += size
	s.met.bytes.Add(size)
	for sh.bytes > sh.budget {
		tail := sh.lru.Back()
		if tail == nil || tail == el {
			break
		}
		ev := tail.Value.(*entry)
		sh.lru.Remove(tail)
		delete(sh.entries, ev.key)
		sh.bytes -= int64(len(ev.body))
		s.met.bytes.Add(-int64(len(ev.body)))
		s.met.evictions.Inc()
	}
}

// Reset drops every cached body, returning the store to cold — a
// crashed-and-restarted edge node models its lost cache with this.
// In-flight synthesis is untouched: a flight in progress completes,
// hands its waiters the body, and re-inserts it into the emptied
// cache.
func (s *Store) Reset() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		dropped := sh.bytes
		sh.entries = make(map[ChunkKey]*list.Element)
		sh.lru.Init()
		sh.bytes = 0
		sh.mu.Unlock()
		s.met.bytes.Add(-dropped)
	}
}

// Put warms the cache with an already-built body for key — the
// replication write path: a cluster owner that just served a body
// hands the same sealed slice to the key's other owners, so a warm
// costs no synthesis and no copy. The body must be immutable and is
// retained as the shared cached copy (a slice previously returned by
// Get satisfies the contract). An existing entry wins — bodies are
// pure functions of the key, so there is nothing to replace. Reports
// whether the body is resident afterwards (false for duplicates and
// for bodies too large to cache).
func (s *Store) Put(key ChunkKey, body []byte) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.entries[key]; ok {
		return false
	}
	s.insertLocked(sh, key, body)
	_, ok := sh.entries[key]
	return ok
}

// ChunkLen reports the exact body length the store would serve for the
// addressed chunk without synthesizing it. Only stores with a sized
// streaming synth (WithWriterSynth / WithCtxWriterSynth) carry a size
// model; others return an error.
func (s *Store) ChunkLen(videoID string, quality, tile, index int, layer bool) (int, error) {
	key := ChunkKey{Video: videoID, Quality: quality, Tile: tile, Index: index, Layer: layer}
	switch {
	case s.writerSynth.Size != nil:
		return s.writerSynth.Size(key)
	case s.ctxWriter.Size != nil:
		return s.ctxWriter.Size(key)
	}
	return 0, fmt.Errorf("serve: store has no size model for %s", key)
}

// Contains reports whether key is resident (without touching LRU
// order).
func (s *Store) Contains(key ChunkKey) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.entries[key]
	return ok
}

// Bytes reports the resident body bytes across all shards.
func (s *Store) Bytes() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// Len reports the resident entry count across all shards.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

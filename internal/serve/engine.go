package serve

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"sperke/internal/abr"
	"sperke/internal/core"
	"sperke/internal/dash"
	"sperke/internal/media"
	"sperke/internal/netem"
	"sperke/internal/obs"
	"sperke/internal/sim"
	"sperke/internal/trace"
	"sperke/internal/transport"
)

// EngineConfig sizes a concurrent-viewer run. The zero value is not
// usable: Video is required.
type EngineConfig struct {
	// Video every simulated viewer streams.
	Video *media.Video
	// Sessions is the number of simulated viewers (default 1).
	Sessions int
	// Workers bounds how many sessions run concurrently (default
	// GOMAXPROCS, capped at Sessions). Per-session results are a pure
	// function of the seed, so the worker count changes only wall-clock
	// time, never the reported QoE.
	Workers int
	// BaseSeed seeds viewer i with BaseSeed+i, so every session draws
	// from its own deterministic stream.
	BaseSeed int64
	// BandwidthBPS is each viewer's emulated access link (default
	// 25 Mbit/s); Propagation its one-way delay (default 20ms).
	BandwidthBPS float64
	Propagation  time.Duration
	// Mode, OOS, EnableUpgrades and SpeedScale shape the sessions the
	// same way the experiment harness does (SpeedScale defaults to 1).
	Mode           core.StreamMode
	OOS            abr.OOSPolicy
	EnableUpgrades bool
	SpeedScale     float64
	// Client, when set, exercises a real DASH origin: every chunk the
	// simulated planner fetches is also downloaded over HTTP (hitting
	// the server's chunk store) and its wall latency recorded. The HTTP
	// leg is observation-only — delivery timing that drives QoE still
	// comes from the emulated path, so results stay deterministic.
	Client *dash.Client
	// Obs receives the engine's instruments (fetch latency histogram,
	// session/error counters) and is threaded into every session. Nil
	// means a private registry.
	Obs *obs.Registry
}

// SessionResult is one viewer's outcome, in launch order.
type SessionResult struct {
	Index int
	Seed  int64
	// Err is non-nil when the session could not be constructed; Report
	// is zero then.
	Err    error
	Report core.Report
}

// Aggregate summarizes QoE across completed sessions.
type Aggregate struct {
	Sessions int
	// MeanQuality and MeanScore average the per-session mean FoV
	// quality and QoE score.
	MeanQuality float64
	MeanScore   float64
	// Stalls, StallTime and BlankTime sum across sessions.
	Stalls    int
	StallTime time.Duration
	BlankTime time.Duration
	// BytesFetched and BytesWasted sum wire usage across sessions.
	BytesFetched  int64
	BytesWasted   int64
	UrgentFetches int
}

// EngineResult is one Run's outcome.
type EngineResult struct {
	// Sessions holds per-viewer results indexed by launch order.
	Sessions []SessionResult
	Agg      Aggregate
	// FetchLatency summarizes HTTP chunk fetch wall latency in
	// milliseconds (zero when no Client was configured).
	FetchLatency obs.HistogramStat
	// HTTPFetches and HTTPErrors count the HTTP leg's outcomes.
	HTTPFetches int64
	HTTPErrors  int64
	// Wall is the run's wall-clock duration.
	Wall time.Duration
}

// engineMetrics caches the engine's instruments.
type engineMetrics struct {
	fetchMS  *obs.Histogram
	fetches  *obs.Counter
	errors   *obs.Counter
	sessions *obs.Counter
}

// Engine runs K simulated viewers over a worker pool. Each viewer is a
// full core.Session on its own sim clock and emulated path; sessions
// share nothing but the (thread-safe) obs registry and, optionally, one
// DASH origin exercised over HTTP. Because every per-session input is
// derived from BaseSeed+i, a run's per-session reports are byte-stable
// across worker counts — concurrency buys wall-clock time only.
type Engine struct {
	cfg EngineConfig
	reg *obs.Registry
	met engineMetrics
}

// NewEngine validates the config and applies defaults.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Video == nil {
		return nil, fmt.Errorf("serve: engine config: %w", errNilVideo)
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > cfg.Sessions {
		cfg.Workers = cfg.Sessions
	}
	if cfg.BandwidthBPS <= 0 {
		cfg.BandwidthBPS = 25e6
	}
	if cfg.Propagation <= 0 {
		cfg.Propagation = 20 * time.Millisecond
	}
	if cfg.SpeedScale <= 0 {
		cfg.SpeedScale = 1
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Engine{
		cfg: cfg,
		reg: reg,
		met: engineMetrics{
			fetchMS:  reg.Histogram("serve.engine.fetch_ms"),
			fetches:  reg.Counter("serve.engine.http_fetches"),
			errors:   reg.Counter("serve.engine.http_errors"),
			sessions: reg.Counter("serve.engine.sessions"),
		},
	}, nil
}

var errNilVideo = fmt.Errorf("nil video")

// DefaultWorkers is the worker-pool size used when EngineConfig.Workers
// is zero.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Run drives all sessions to completion (or ctx cancellation — each
// session observes ctx at its planning and playback ticks and returns a
// partial report) and aggregates the outcome.
func (e *Engine) Run(ctx context.Context) EngineResult {
	wall := obs.NewWall()
	results := make([]SessionResult, e.cfg.Sessions)
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				results[i] = e.runOne(ctx, i)
				e.met.sessions.Inc()
			}
		}()
	}
	for i := 0; i < e.cfg.Sessions; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	res := EngineResult{Sessions: results, Wall: wall.Now()}
	maxQ := e.cfg.Video.Qualities() - 1
	for _, sr := range results {
		if sr.Err != nil {
			continue
		}
		m := sr.Report.QoE
		res.Agg.Sessions++
		res.Agg.MeanQuality += m.MeanQuality()
		res.Agg.MeanScore += m.Score(maxQ)
		res.Agg.Stalls += m.Stalls
		res.Agg.StallTime += m.StallTime
		res.Agg.BlankTime += m.BlankTime
		res.Agg.BytesFetched += sr.Report.BytesFetched
		res.Agg.BytesWasted += sr.Report.BytesWasted
		res.Agg.UrgentFetches += sr.Report.UrgentFetches
	}
	if n := float64(res.Agg.Sessions); n > 0 {
		res.Agg.MeanQuality /= n
		res.Agg.MeanScore /= n
	}
	res.FetchLatency = e.met.fetchMS.Stat()
	res.HTTPFetches = e.met.fetches.Value()
	res.HTTPErrors = e.met.errors.Value()
	return res
}

// sessionTrace builds viewer i's head trace: motion seeded from
// BaseSeed+i, attention from BaseSeed+i+60, over the video plus a 10s
// tail. This is THE trace recipe — runOne and SessionTraces both call
// it, so a crowd prior built from SessionTraces describes exactly the
// heads the run will simulate.
func sessionTrace(cfg EngineConfig, i int) *trace.HeadTrace {
	seed := cfg.BaseSeed + int64(i)
	dur := cfg.Video.Duration + 10*time.Second
	rng := rand.New(rand.NewSource(seed))
	att := trace.GenerateAttention(rand.New(rand.NewSource(seed+60)), dur)
	return trace.Generate(rng, trace.UserProfile{
		ID:         fmt.Sprintf("viewer-%d", i),
		SpeedScale: cfg.SpeedScale,
	}, att, dur)
}

// SessionTraces regenerates the head traces an engine built from cfg
// will drive, without running anything — the input a caller needs to
// build a crowd heatmap (hmp.BuildHeatmap) that matches the run, e.g.
// to seed a cache tier's pre-warm prior. Applies the same defaults
// NewEngine does, so passing the identical cfg yields the identical
// traces.
func SessionTraces(cfg EngineConfig) []*trace.HeadTrace {
	if cfg.Video == nil {
		return nil
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if cfg.SpeedScale <= 0 {
		cfg.SpeedScale = 1
	}
	traces := make([]*trace.HeadTrace, cfg.Sessions)
	for i := range traces {
		traces[i] = sessionTrace(cfg, i)
	}
	return traces
}

// runOne builds and runs viewer i exactly the way the experiment
// harness builds single sessions, so engine QoE is comparable with
// experiment tables at the same seed.
func (e *Engine) runOne(ctx context.Context, i int) SessionResult {
	seed := e.cfg.BaseSeed + int64(i)
	v := e.cfg.Video
	clock := sim.NewClock(seed)
	path := netem.NewPath(clock, "net", netem.Constant(e.cfg.BandwidthBPS), e.cfg.Propagation, 0)
	var sched transport.Scheduler = transport.NewSinglePath(clock, path)
	if e.cfg.Client != nil {
		sched = &httpMirror{
			ctx:    ctx,
			inner:  sched,
			client: e.cfg.Client,
			video:  v,
			met:    &e.met,
			wall:   obs.NewWall(),
		}
	}
	head := sessionTrace(e.cfg, i)
	s, err := core.NewSession(clock, core.Config{
		Video:          v,
		Mode:           e.cfg.Mode,
		OOS:            e.cfg.OOS,
		EnableUpgrades: e.cfg.EnableUpgrades,
	}, head, sched, core.WithObs(e.reg))
	if err != nil {
		return SessionResult{Index: i, Seed: seed, Err: fmt.Errorf("serve: session %d: %w", i, err)}
	}
	return SessionResult{Index: i, Seed: seed, Report: s.RunContext(ctx)}
}

// httpMirror wraps a sim scheduler so every submitted chunk is also
// fetched from a real DASH origin over HTTP. The mirror fetch happens
// before the sim submission and its outcome feeds only metrics; QoE
// timing stays with the emulated path, which keeps the run
// deterministic while still exercising the server's chunk store under
// genuine concurrency.
type httpMirror struct {
	// ctx is the engine run's context. Legacy Submit calls carry no
	// caller context, so they mirror under it — canceling the run
	// aborts in-flight mirror HTTP requests instead of leaving them
	// fetching chunks nobody will record.
	ctx    context.Context
	inner  transport.Scheduler
	client *dash.Client
	video  *media.Video
	met    *engineMetrics
	wall   *obs.Wall
}

// Name implements transport.Scheduler.
func (m *httpMirror) Name() string { return m.inner.Name() + "+http" }

// Submit implements transport.Scheduler.
func (m *httpMirror) Submit(r *transport.Request) {
	m.mirror(m.ctx, r)
	m.inner.Submit(r)
}

// SubmitCtx implements transport.ContextScheduler.
func (m *httpMirror) SubmitCtx(ctx context.Context, r *transport.Request) {
	m.mirror(ctx, r)
	transport.SubmitContext(m.inner, ctx, r)
}

func (m *httpMirror) mirror(ctx context.Context, r *transport.Request) {
	if ctx.Err() != nil {
		return
	}
	idx := int(r.Chunk.Start / m.video.ChunkDuration)
	start := m.wall.Now()
	_, err := m.client.FetchChunk(ctx, m.video.ID, r.Chunk.Quality, int(r.Chunk.Tile), idx)
	m.met.fetchMS.Observe(float64(m.wall.Now()-start) / float64(time.Millisecond))
	m.met.fetches.Inc()
	if err != nil {
		m.met.errors.Inc()
	}
}

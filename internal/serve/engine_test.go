package serve

import (
	"context"
	"net"
	"net/http"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sperke/internal/dash"
	"sperke/internal/media"
	"sperke/internal/obs"
	"sperke/internal/tiling"
	"sperke/internal/transport"
)

func engineVideo() *media.Video {
	return &media.Video{
		ID:             "eng",
		Duration:       12 * time.Second,
		ChunkDuration:  2 * time.Second,
		Grid:           tiling.GridPrototype,
		ProjectionName: "equirectangular",
		Ladder:         media.DefaultLadder,
		Encoding:       media.EncodingAVC,
	}
}

// TestEngineDeterministicAcrossWorkerCounts is the engine's core
// guarantee: per-session QoE is a pure function of the seed, so the
// same run at different worker counts yields identical reports.
func TestEngineDeterministicAcrossWorkerCounts(t *testing.T) {
	v := engineVideo()
	run := func(workers int) []SessionResult {
		eng, err := NewEngine(EngineConfig{
			Video:    v,
			Sessions: 6,
			Workers:  workers,
			BaseSeed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng.Run(context.Background()).Sessions
	}
	one := run(1)
	four := run(4)
	for i := range one {
		if one[i].Err != nil {
			t.Fatalf("session %d: %v", i, one[i].Err)
		}
		if !reflect.DeepEqual(one[i], four[i]) {
			t.Fatalf("session %d differs across worker counts:\n1 worker:  %+v\n4 workers: %+v",
				i, one[i], four[i])
		}
	}
	if one[0].Seed != 99 || one[5].Seed != 104 {
		t.Fatalf("seeds not BaseSeed+i: %d..%d", one[0].Seed, one[5].Seed)
	}
	// Different seeds must actually produce different viewers — otherwise
	// the determinism check above proves nothing.
	if reflect.DeepEqual(one[0].Report, one[1].Report) {
		t.Fatal("adjacent seeds produced identical reports; seeding is broken")
	}
}

// TestEngineAggregates checks the aggregate math against the
// per-session reports it summarizes.
func TestEngineAggregates(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Video: engineVideo(), Sessions: 3, Workers: 2, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run(context.Background())
	if res.Agg.Sessions != 3 {
		t.Fatalf("aggregate sessions = %d, want 3", res.Agg.Sessions)
	}
	var bytes int64
	var quality float64
	for _, sr := range res.Sessions {
		bytes += sr.Report.BytesFetched
		quality += sr.Report.QoE.MeanQuality()
	}
	if res.Agg.BytesFetched != bytes {
		t.Fatalf("aggregate bytes %d != sum %d", res.Agg.BytesFetched, bytes)
	}
	if got, want := res.Agg.MeanQuality, quality/3; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("aggregate mean quality %v != %v", got, want)
	}
	if res.Agg.BytesFetched == 0 {
		t.Fatal("sessions fetched nothing")
	}
}

// TestEngineAgainstHTTPOrigin drives viewers whose fetches also hit a
// real DASH server backed by the sharded store, and checks the HTTP leg
// leaves QoE untouched.
func TestEngineAgainstHTTPOrigin(t *testing.T) {
	v := engineVideo()
	catalog := dash.NewCatalog()
	if err := catalog.Add(v); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	store := NewCatalogStore(catalog, StoreConfig{Shards: 4, BudgetBytes: 64 << 20, Obs: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: dash.NewServer(catalog, dash.WithStore(store))}
	go srv.Serve(ln)
	defer srv.Close()

	client := dash.NewClient("http://" + ln.Addr().String())
	mk := func(c *dash.Client) *Engine {
		eng, err := NewEngine(EngineConfig{
			Video: v, Sessions: 4, Workers: 4, BaseSeed: 5, Client: c, Obs: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	withHTTP := mk(client).Run(context.Background())
	if withHTTP.HTTPFetches == 0 {
		t.Fatal("no HTTP fetches recorded")
	}
	if withHTTP.HTTPErrors != 0 {
		t.Fatalf("%d HTTP errors", withHTTP.HTTPErrors)
	}
	if withHTTP.FetchLatency.Count != withHTTP.HTTPFetches {
		t.Fatalf("latency samples %d != fetches %d", withHTTP.FetchLatency.Count, withHTTP.HTTPFetches)
	}
	hits := reg.Counter("serve.store.hits").Value()
	misses := reg.Counter("serve.store.misses").Value()
	if hits+misses == 0 {
		t.Fatal("store saw no traffic")
	}

	// The HTTP leg is observation-only: QoE must match a pure-sim run.
	pure := mk(nil).Run(context.Background())
	for i := range pure.Sessions {
		if !reflect.DeepEqual(pure.Sessions[i].Report, withHTTP.Sessions[i].Report) {
			t.Fatalf("session %d QoE differs with HTTP leg attached", i)
		}
	}
}

// TestEngineContextCancel: a canceled run returns promptly with partial
// (zero-play) reports rather than hanging the pool.
func TestEngineContextCancel(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Video: engineVideo(), Sessions: 2, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := eng.Run(ctx)
	if len(res.Sessions) != 2 {
		t.Fatalf("got %d session slots", len(res.Sessions))
	}
	for i, sr := range res.Sessions {
		if sr.Err != nil {
			t.Fatalf("session %d: %v", i, sr.Err)
		}
		if sr.Report.QoE.PlayTime != 0 {
			t.Fatalf("session %d played %v under a pre-canceled context", i, sr.Report.QoE.PlayTime)
		}
	}
}

// TestNewEngineValidates pins config validation and defaults.
func TestNewEngineValidates(t *testing.T) {
	if _, err := NewEngine(EngineConfig{}); err == nil {
		t.Fatal("nil video accepted")
	}
	eng, err := NewEngine(EngineConfig{Video: engineVideo(), Sessions: 2, Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if eng.cfg.Workers != 2 {
		t.Fatalf("workers not capped at sessions: %d", eng.cfg.Workers)
	}
}

// nopSched is an inner scheduler that accepts and drops requests.
type nopSched struct{}

func (nopSched) Name() string                { return "nop" }
func (nopSched) Submit(r *transport.Request) {}

// TestMirrorSubmitAbortsOnEngineCancel is the regression for the
// legacy-path context drop: Submit carries no caller context, so its
// mirror fetch must ride the engine run's context — canceling the run
// aborts the in-flight HTTP request. Before the fix the mirror ran on
// context.Background and this fetch hung until the server closed.
func TestMirrorSubmitAbortsOnEngineCancel(t *testing.T) {
	entered := make(chan struct{})
	var once sync.Once
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() { close(entered) })
		<-r.Context().Done()
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()

	reg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	m := &httpMirror{
		ctx:    ctx,
		inner:  nopSched{},
		client: dash.NewClient("http://" + ln.Addr().String()),
		video:  engineVideo(),
		met: &engineMetrics{
			fetchMS: reg.Histogram("test.fetch_ms"),
			fetches: reg.Counter("test.fetches"),
			errors:  reg.Counter("test.errors"),
		},
		wall: obs.NewWall(),
	}
	done := make(chan struct{})
	go func() {
		m.Submit(&transport.Request{Chunk: tiling.ChunkID{}})
		close(done)
	}()
	<-entered
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("legacy Submit's mirror fetch never aborted on engine cancel")
	}
	if m.met.errors.Value() == 0 {
		t.Fatal("aborted mirror fetch should be counted as an HTTP error")
	}
}

// TestEngineCancelLeavesNoPendingMirrorFetch: canceling a run with an
// HTTP mirror attached both returns promptly and unwinds every
// in-flight mirror request — the origin sees each request's context
// die instead of holding connections for chunks nobody will record.
func TestEngineCancelLeavesNoPendingMirrorFetch(t *testing.T) {
	var inflight atomic.Int64
	entered := make(chan struct{})
	var once sync.Once
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inflight.Add(1)
		defer inflight.Add(-1)
		once.Do(func() { close(entered) })
		<-r.Context().Done()
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()

	eng, err := NewEngine(EngineConfig{
		Video: engineVideo(), Sessions: 2, Workers: 2, BaseSeed: 9,
		Client: dash.NewClient("http://" + ln.Addr().String()),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() {
		eng.Run(ctx)
		close(runDone)
	}()
	<-entered
	cancel()
	select {
	case <-runDone:
	case <-time.After(10 * time.Second):
		t.Fatal("engine run never returned after cancel")
	}
	deadline := time.Now().Add(5 * time.Second)
	for inflight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d mirror fetch(es) still pending after engine cancel", inflight.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

package serve

import (
	"context"
	"fmt"

	"sperke/internal/dash"
)

// NewCatalogStore builds a Store whose miss path synthesizes chunk
// bodies from a dash catalog with dash.AppendChunkBody — the exact
// bytes the per-request path would produce, built into the store's
// pooled scratch so a miss allocates only the sealed cache copy. Wire
// it under a server with dash.WithStore:
//
//	store := serve.NewCatalogStore(catalog, serve.StoreConfig{BudgetBytes: 256 << 20})
//	srv := dash.NewServer(catalog, dash.WithStore(store))
func NewCatalogStore(cat *dash.Catalog, cfg StoreConfig) *Store {
	return NewAppendStore(func(dst []byte, key ChunkKey) ([]byte, error) {
		v, ok := cat.Get(key.Video)
		if !ok {
			return dst, fmt.Errorf("serve: video %q not in catalog", key.Video)
		}
		return dash.AppendChunkBody(dst, v, key.Quality, key.Tile, key.Index, key.Layer)
	}, cfg)
}

// Chunk implements dash.ChunkSource over the sharded cache.
func (s *Store) Chunk(ctx context.Context, videoID string, quality, tile, index int, layer bool) ([]byte, error) {
	return s.Get(ctx, ChunkKey{Video: videoID, Quality: quality, Tile: tile, Index: index, Layer: layer})
}

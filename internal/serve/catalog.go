package serve

import (
	"context"
	"fmt"
	"io"

	"sperke/internal/dash"
)

// NewCatalogStore builds a Store whose miss path streams chunk bodies
// from a dash catalog with dash.WriteChunkBody — the single writer-
// first synthesis routine the store-less serving path uses, so cached
// and streamed bodies are byte-identical by construction. The sealed
// cache copy is allocated at its exact length (dash.ChunkBodyLen) and
// filled by the stream; a miss performs no other body-sized work. Wire
// it under a server with dash.WithStore:
//
//	store := serve.NewCatalogStore(catalog, serve.StoreConfig{BudgetBytes: 256 << 20})
//	srv := dash.NewServer(catalog, dash.WithStore(store))
func NewCatalogStore(cat *dash.Catalog, cfg StoreConfig) *Store {
	return NewWriterStore(WriterSynth{
		Size: func(key ChunkKey) (int, error) {
			v, ok := cat.Get(key.Video)
			if !ok {
				return 0, fmt.Errorf("serve: video %q not in catalog", key.Video)
			}
			return dash.ChunkBodyLen(v, key.Quality, key.Tile, key.Index, key.Layer)
		},
		Write: func(w io.Writer, key ChunkKey) error {
			v, ok := cat.Get(key.Video)
			if !ok {
				return fmt.Errorf("serve: video %q not in catalog", key.Video)
			}
			return dash.WriteChunkBody(w, v, key.Quality, key.Tile, key.Index, key.Layer)
		},
	}, cfg)
}

// Chunk implements dash.ChunkSource over the sharded cache.
func (s *Store) Chunk(ctx context.Context, videoID string, quality, tile, index int, layer bool) ([]byte, error) {
	return s.Get(ctx, ChunkKey{Video: videoID, Quality: quality, Tile: tile, Index: index, Layer: layer})
}

// ChunkTo streams the addressed chunk body into w: a Get (cache hit,
// or the synthesis it triggers) followed by one write of the sealed
// body — no second body-sized copy anywhere. Paired with ChunkLen it
// is the streaming origin seam the cluster's wire router uses for
// re-routed cold misses.
func (s *Store) ChunkTo(ctx context.Context, w io.Writer, videoID string, quality, tile, index int, layer bool) (int64, error) {
	body, err := s.Get(ctx, ChunkKey{Video: videoID, Quality: quality, Tile: tile, Index: index, Layer: layer})
	if err != nil {
		return 0, err
	}
	n, err := w.Write(body)
	return int64(n), err
}

package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"
)

// optBody is the deterministic test body every synthesis flavor in
// this file produces, so stores built through different constructors
// can be compared byte for byte.
func optBody(k ChunkKey) []byte {
	return []byte(fmt.Sprintf("body:%s", k))
}

// TestLegacyConstructorsMatchOptions pins the deprecated constructors
// as exact one-line wrappers: for every synthesis flavor, a store built
// the legacy way and one built through New with the equivalent option
// serve identical bytes, share the same shard/budget resolution, and
// agree on cache residency after the same access sequence.
func TestLegacyConstructorsMatchOptions(t *testing.T) {
	cfg := StoreConfig{Shards: 3, BudgetBytes: 1 << 20}
	synth := func(k ChunkKey) ([]byte, error) { return optBody(k), nil }
	appendSynth := func(dst []byte, k ChunkKey) ([]byte, error) { return append(dst, optBody(k)...), nil }
	ws := WriterSynth{
		Size: func(k ChunkKey) (int, error) { return len(optBody(k)), nil },
		Write: func(w io.Writer, k ChunkKey) error {
			_, err := w.Write(optBody(k))
			return err
		},
	}
	ctxSynth := func(ctx context.Context, k ChunkKey) ([]byte, error) { return optBody(k), nil }

	cases := []struct {
		name    string
		legacy  *Store
		options *Store
	}{
		{"synth", NewStore(synth, cfg), New(WithSynth(synth), WithShards(cfg.Shards), WithBudget(cfg.BudgetBytes))},
		{"append", NewAppendStore(appendSynth, cfg), New(WithAppendSynth(appendSynth), WithShards(cfg.Shards), WithBudget(cfg.BudgetBytes))},
		{"writer", NewWriterStore(ws, cfg), New(WithWriterSynth(ws), WithShards(cfg.Shards), WithBudget(cfg.BudgetBytes))},
		{"ctx", NewCtxStore(ctxSynth, cfg), New(WithCtxSynth(ctxSynth), WithShards(cfg.Shards), WithBudget(cfg.BudgetBytes))},
	}
	ctx := context.Background()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got, want := tc.options.Shards(), tc.legacy.Shards(); got != want {
				t.Fatalf("shard count: options %d, legacy %d", got, want)
			}
			for i := 0; i < 32; i++ {
				k := key(i)
				a, err := tc.legacy.Get(ctx, k)
				if err != nil {
					t.Fatalf("legacy Get(%s): %v", k, err)
				}
				b, err := tc.options.Get(ctx, k)
				if err != nil {
					t.Fatalf("options Get(%s): %v", k, err)
				}
				if !bytes.Equal(a, b) {
					t.Fatalf("key %s: legacy and options stores serve different bytes", k)
				}
				if tc.legacy.Contains(k) != tc.options.Contains(k) {
					t.Fatalf("key %s: residency diverges between legacy and options stores", k)
				}
			}
			if tc.legacy.Len() != tc.options.Len() || tc.legacy.Bytes() != tc.options.Bytes() {
				t.Fatalf("occupancy diverges: legacy %d entries/%d bytes, options %d entries/%d bytes",
					tc.legacy.Len(), tc.legacy.Bytes(), tc.options.Len(), tc.options.Bytes())
			}
		})
	}
}

// TestNewRequiresExactlyOneSynth pins New's construction contract:
// zero synthesis options panic (matching the legacy constructors'
// nil-synth panics), and so does stacking two.
func TestNewRequiresExactlyOneSynth(t *testing.T) {
	mustPanic := func(name string, build func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: New did not panic", name)
			}
		}()
		build()
	}
	mustPanic("no synth", func() { New(WithShards(4)) })
	mustPanic("two synths", func() {
		New(WithSynth(func(k ChunkKey) ([]byte, error) { return nil, nil }),
			WithCtxSynth(func(ctx context.Context, k ChunkKey) ([]byte, error) { return nil, nil }))
	})
	mustPanic("half a writer synth", func() {
		New(WithWriterSynth(WriterSynth{Size: func(k ChunkKey) (int, error) { return 0, nil }}))
	})
}

// TestCtxWriterSynthStreamsExactSize exercises the combined miss path:
// bodies arrive sealed at their exact size, a length mismatch fails the
// Get instead of caching a half-built body, and the synthesizer sees
// the flight's context.
func TestCtxWriterSynthStreamsExactSize(t *testing.T) {
	sawCtx := false
	st := New(WithCtxWriterSynth(CtxWriterSynth{
		Size: func(k ChunkKey) (int, error) { return len(optBody(k)), nil },
		Write: func(ctx context.Context, w io.Writer, k ChunkKey) error {
			if ctx != nil {
				sawCtx = true
			}
			_, err := w.Write(optBody(k))
			return err
		},
	}), WithShards(2))
	k := key(1)
	body, err := st.Get(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, optBody(k)) {
		t.Fatalf("body mismatch: got %q", body)
	}
	if len(body) != cap(body) {
		t.Fatalf("body not sealed: len %d cap %d", len(body), cap(body))
	}
	if !sawCtx {
		t.Fatal("synthesizer never saw a flight context")
	}

	lying := New(WithCtxWriterSynth(CtxWriterSynth{
		Size: func(k ChunkKey) (int, error) { return 3, nil },
		Write: func(ctx context.Context, w io.Writer, k ChunkKey) error {
			_, err := w.Write([]byte("12345"))
			return err
		},
	}))
	if _, err := lying.Get(context.Background(), k); err == nil {
		t.Fatal("size/stream mismatch did not fail the Get")
	}
	if lying.Contains(k) {
		t.Fatal("half-built body was cached")
	}
}

// TestPutWarmsWithoutSynthesis pins the replication write path: Put
// inserts a pre-built body with no synthesis, a duplicate Put is a
// no-op, and the warmed body is exactly what Get returns afterwards.
func TestPutWarmsWithoutSynthesis(t *testing.T) {
	synths := 0
	st := New(WithSynth(func(k ChunkKey) ([]byte, error) {
		synths++
		return optBody(k), nil
	}), WithShards(2))
	k := key(7)
	body := optBody(k)
	if !st.Put(k, body) {
		t.Fatal("first Put rejected")
	}
	if st.Put(k, body) {
		t.Fatal("duplicate Put reported an insert")
	}
	got, err := st.Get(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("Get returned different bytes than Put stored")
	}
	if synths != 0 {
		t.Fatalf("warm hit still synthesized %d times", synths)
	}

	tiny := New(WithSynth(func(k ChunkKey) ([]byte, error) { return optBody(k), nil }), WithShards(1), WithBudget(1))
	if tiny.Put(k, body) {
		t.Fatal("oversized Put reported residency")
	}
}

// TestChunkLenAndChunkTo pins the streaming origin seam: ChunkLen
// reports the sized synth's exact length without synthesizing, ChunkTo
// streams the same bytes Chunk returns, and a store without a size
// model refuses ChunkLen.
func TestChunkLenAndChunkTo(t *testing.T) {
	st := New(WithWriterSynth(WriterSynth{
		Size: func(k ChunkKey) (int, error) { return len(optBody(k)), nil },
		Write: func(w io.Writer, k ChunkKey) error {
			_, err := w.Write(optBody(k))
			return err
		},
	}))
	k := key(3)
	n, err := st.ChunkLen(k.Video, k.Quality, k.Tile, k.Index, k.Layer)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(optBody(k)) {
		t.Fatalf("ChunkLen = %d, want %d", n, len(optBody(k)))
	}
	if st.Len() != 0 {
		t.Fatal("ChunkLen synthesized a body")
	}
	var buf bytes.Buffer
	wrote, err := st.ChunkTo(context.Background(), &buf, k.Video, k.Quality, k.Tile, k.Index, k.Layer)
	if err != nil {
		t.Fatal(err)
	}
	if wrote != int64(len(optBody(k))) || !bytes.Equal(buf.Bytes(), optBody(k)) {
		t.Fatalf("ChunkTo streamed %d bytes %q, want %q", wrote, buf.Bytes(), optBody(k))
	}

	plain := New(WithSynth(func(k ChunkKey) ([]byte, error) { return optBody(k), nil }))
	if _, err := plain.ChunkLen(k.Video, k.Quality, k.Tile, k.Index, k.Layer); err == nil {
		t.Fatal("store without a size model reported a ChunkLen")
	}
}

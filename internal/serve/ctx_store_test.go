package serve

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestCtxStoreCancelAbortsLoneFlight is the cancellation contract that
// motivated NewCtxStore: when the only caller interested in a cold key
// departs, the flight's context is canceled and the synthesis aborts
// instead of completing into the void. Before the context-aware store,
// the miss path ran on context.Background and this synth hung forever.
func TestCtxStoreCancelAbortsLoneFlight(t *testing.T) {
	entered := make(chan struct{})
	aborted := make(chan error, 1)
	st := NewCtxStore(func(ctx context.Context, k ChunkKey) ([]byte, error) {
		close(entered)
		<-ctx.Done()
		aborted <- ctx.Err()
		return nil, ctx.Err()
	}, StoreConfig{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := st.Get(ctx, key(1))
		done <- err
	}()
	<-entered
	cancel()

	select {
	case err := <-aborted:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("flight context ended with %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("synthesis never observed the lone caller's cancellation")
	}
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Get returned %v, want context.Canceled", err)
	}
	if st.Contains(key(1)) {
		t.Fatal("aborted flight must not cache a body")
	}
}

// TestCtxStoreFlightSurvivesOneCancel: a shared flight is canceled only
// when the LAST interested caller departs — one waiter leaving must not
// poison the body everyone else is waiting on.
func TestCtxStoreFlightSurvivesOneCancel(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	want := bytes.Repeat([]byte{0xcd}, 256)
	var flightCanceled atomic.Bool
	st := NewCtxStore(func(ctx context.Context, k ChunkKey) ([]byte, error) {
		close(entered)
		select {
		case <-ctx.Done():
			flightCanceled.Store(true)
			return nil, ctx.Err()
		case <-release:
			return want, nil
		}
	}, StoreConfig{})

	k := key(2)
	leaderDone := make(chan error, 1)
	go func() {
		_, err := st.Get(context.Background(), k)
		leaderDone <- err
	}()
	<-entered

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := st.Get(waiterCtx, k)
		waiterDone <- err
	}()
	cancelWaiter()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter error = %v, want context.Canceled", err)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader error: %v — the waiter's departure poisoned the shared flight", err)
	}
	if flightCanceled.Load() {
		t.Fatal("flight context was canceled while the leader still wanted the body")
	}
	if !st.Contains(k) {
		t.Fatal("completed flight should have cached the body")
	}
}

// TestCtxStoreRetryAfterAbandonStartsFresh: once a flight is abandoned,
// the next caller starts a new synthesis rather than joining the dying
// flight and inheriting its cancellation.
func TestCtxStoreRetryAfterAbandonStartsFresh(t *testing.T) {
	var calls atomic.Int32
	entered := make(chan struct{})
	want := []byte("fresh")
	st := NewCtxStore(func(ctx context.Context, k ChunkKey) ([]byte, error) {
		if calls.Add(1) == 1 {
			close(entered)
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return want, nil
	}, StoreConfig{})

	k := key(3)
	ctx, cancel := context.WithCancel(context.Background())
	first := make(chan error, 1)
	go func() {
		_, err := st.Get(ctx, k)
		first <- err
	}()
	<-entered
	cancel()
	if err := <-first; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Get returned %v, want context.Canceled", err)
	}
	// The first flight may still be unwinding; retry until the fresh
	// synthesis lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		body, err := st.Get(context.Background(), k)
		if err == nil {
			if !bytes.Equal(body, want) {
				t.Fatalf("retry returned %q, want %q", body, want)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retry kept failing: %v", err)
		}
	}
	if got := calls.Load(); got < 2 {
		t.Fatalf("synth ran %d times, want a fresh second run", got)
	}
}

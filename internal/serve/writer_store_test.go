package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"sperke/internal/dash"
	"sperke/internal/media"
	"sperke/internal/obs"
	"sperke/internal/tiling"
)

// writerSynthFor mirrors appendSynthFor as a sized streaming
// synthesizer, so the two miss paths can be compared byte-for-byte.
func writerSynthFor(size int) WriterSynth {
	as := appendSynthFor(size)
	return WriterSynth{
		Size: func(k ChunkKey) (int, error) { return size, nil },
		Write: func(w io.Writer, k ChunkKey) error {
			body, err := as(nil, k)
			if err != nil {
				return err
			}
			_, err = w.Write(body)
			return err
		},
	}
}

// TestWriterStoreMatchesAppendStore: streaming a miss into its sealed
// buffer must not change a single byte versus the scratch-and-seal
// append path.
func TestWriterStoreMatchesAppendStore(t *testing.T) {
	appendStore := NewAppendStore(appendSynthFor(256), StoreConfig{Shards: 2})
	writerStore := NewWriterStore(writerSynthFor(256), StoreConfig{Shards: 2})
	for i := 0; i < 8; i++ {
		a, err := appendStore.Get(context.Background(), key(i))
		if err != nil {
			t.Fatal(err)
		}
		b, err := writerStore.Get(context.Background(), key(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("key %d: streamed body differs from append-built", i)
		}
		if len(b) != cap(b) {
			t.Fatalf("key %d: streamed body not sealed: len %d cap %d", i, len(b), cap(b))
		}
	}
}

// TestWriterStoreSizeMismatchFails: a synthesizer whose stream does
// not match its size report fails the Get and caches nothing — a
// half-built body must never become the sealed truth.
func TestWriterStoreSizeMismatchFails(t *testing.T) {
	short := NewWriterStore(WriterSynth{
		Size: func(k ChunkKey) (int, error) { return 100, nil },
		Write: func(w io.Writer, k ChunkKey) error {
			_, err := w.Write(make([]byte, 60))
			return err
		},
	}, StoreConfig{Shards: 1})
	if _, err := short.Get(context.Background(), key(0)); err == nil {
		t.Fatal("under-writing synth accepted")
	}
	if short.Contains(key(0)) {
		t.Fatal("mismatched body cached")
	}

	long := NewWriterStore(WriterSynth{
		Size: func(k ChunkKey) (int, error) { return 10, nil },
		Write: func(w io.Writer, k ChunkKey) error {
			_, err := w.Write(make([]byte, 24))
			return err
		},
	}, StoreConfig{Shards: 1})
	if _, err := long.Get(context.Background(), key(0)); err == nil {
		t.Fatal("over-writing synth accepted")
	}

	boom := fmt.Errorf("boom")
	failing := NewWriterStore(WriterSynth{
		Size:  func(k ChunkKey) (int, error) { return 0, boom },
		Write: func(w io.Writer, k ChunkKey) error { return nil },
	}, StoreConfig{Shards: 1})
	if _, err := failing.Get(context.Background(), key(0)); err == nil {
		t.Fatal("size error not propagated")
	}
}

// TestCatalogStoreStreamedMatchesBuild pins the cache==stream==build
// acceptance bar end to end: the catalog store's streamed miss path
// produces exactly dash.BuildChunkBody's bytes, for base chunks and
// SVC layers, and the sealed bodies are exact-size.
func TestCatalogStoreStreamedMatchesBuild(t *testing.T) {
	v := &media.Video{
		ID:             "svc-demo",
		Duration:       12 * time.Second,
		ChunkDuration:  2 * time.Second,
		Grid:           tiling.GridPrototype,
		ProjectionName: "equirectangular",
		Ladder:         media.DefaultLadder,
		Encoding:       media.EncodingSVC,
	}
	cat := dash.NewCatalog()
	if err := cat.Add(v); err != nil {
		t.Fatal(err)
	}
	st := NewCatalogStore(cat, StoreConfig{Shards: 2})
	for _, layer := range []bool{false, true} {
		want, err := dash.BuildChunkBody(v, 2, 5, 3, layer)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.Get(context.Background(), ChunkKey{Video: v.ID, Quality: 2, Tile: 5, Index: 3, Layer: layer})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("layer=%v: cached body differs from BuildChunkBody", layer)
		}
		if len(got) != cap(got) {
			t.Fatalf("layer=%v: cached body not sealed", layer)
		}
	}
	// A hit serves the resident sealed body.
	if !st.Contains(ChunkKey{Video: v.ID, Quality: 2, Tile: 5, Index: 3}) {
		t.Fatal("chunk not resident after miss")
	}
}

// TestWriterStoreColdAllocBudget pins the streamed miss path's
// allocation count: the sealed body, the singleflight bookkeeping and
// nothing else — in particular no scratch buffer and no sealing copy.
func TestWriterStoreColdAllocBudget(t *testing.T) {
	if obs.RaceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random; the allocs/op pin holds only without -race")
	}
	ctx := context.Background()
	block := make([]byte, 64)
	zero := NewWriterStore(WriterSynth{
		Size: func(k ChunkKey) (int, error) { return 512, nil },
		Write: func(w io.Writer, k ChunkKey) error {
			for i := 0; i < 8; i++ {
				if _, err := w.Write(block); err != nil {
					return err
				}
			}
			return nil
		},
	}, StoreConfig{Shards: 1, BudgetBytes: 1})
	// Warm the writer pool.
	if _, err := zero.Get(ctx, key(0)); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := zero.Get(ctx, key(1)); err != nil {
			t.Fatal(err)
		}
	})
	// Sealed body + flight struct + done channel.
	if allocs > 3 {
		t.Fatalf("streamed cold Get: %v allocs/op, want <= 3", allocs)
	}
}

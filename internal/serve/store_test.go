package serve

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sperke/internal/obs"
)

func key(i int) ChunkKey {
	return ChunkKey{Video: "v", Quality: 3, Tile: i % 12, Index: i}
}

// TestConcurrentColdFetchSynthesizesOnce is the singleflight contract:
// however many goroutines race on one cold key, the body is synthesized
// exactly once and everyone gets it.
func TestConcurrentColdFetchSynthesizesOnce(t *testing.T) {
	var calls int32
	entered := make(chan struct{})
	release := make(chan struct{})
	want := bytes.Repeat([]byte{0xab}, 512)
	st := NewStore(func(k ChunkKey) ([]byte, error) {
		if atomic.AddInt32(&calls, 1) == 1 {
			close(entered)
		}
		<-release
		return want, nil
	}, StoreConfig{Shards: 4, BudgetBytes: 1 << 20})

	k := key(7)
	const waiters = 32
	got := make([][]byte, waiters+1)
	errs := make([]error, waiters+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // leader
		defer wg.Done()
		got[0], errs[0] = st.Get(context.Background(), k)
	}()
	<-entered // leader is inside synth; everyone below must share it
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = st.Get(context.Background(), k)
		}(i)
	}
	close(release)
	wg.Wait()

	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("synth ran %d times, want 1", n)
	}
	for i := range got {
		if errs[i] != nil {
			t.Fatalf("Get %d: %v", i, errs[i])
		}
		if !bytes.Equal(got[i], want) {
			t.Fatalf("Get %d returned wrong body (%d bytes)", i, len(got[i]))
		}
	}
	if !st.Contains(k) {
		t.Fatal("key not resident after synthesis")
	}
}

// TestWaiterContextCancel: a caller waiting on someone else's synthesis
// unblocks when its own context dies, without disturbing the flight.
func TestWaiterContextCancel(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	st := NewStore(func(k ChunkKey) ([]byte, error) {
		close(entered)
		<-release
		return []byte("ok"), nil
	}, StoreConfig{})

	k := key(1)
	leaderDone := make(chan error, 1)
	go func() {
		_, err := st.Get(context.Background(), k)
		leaderDone <- err
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := st.Get(ctx, k)
		waiterDone <- err
	}()
	cancel()
	if err := <-waiterDone; err != context.Canceled {
		t.Fatalf("waiter error = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader error: %v", err)
	}
	if !st.Contains(k) {
		t.Fatal("flight should have completed and cached despite the canceled waiter")
	}
}

// TestEvictionRespectsBudget pins the LRU byte accounting: the store
// never holds more than its budget, evicts oldest-first, and re-misses
// on an evicted key.
func TestEvictionRespectsBudget(t *testing.T) {
	var calls int32
	body := bytes.Repeat([]byte{1}, 300)
	reg := obs.NewRegistry()
	st := NewStore(func(k ChunkKey) ([]byte, error) {
		atomic.AddInt32(&calls, 1)
		return body, nil
	}, StoreConfig{Shards: 1, BudgetBytes: 1000, Obs: reg})

	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := st.Get(ctx, key(i)); err != nil {
			t.Fatal(err)
		}
		if b := st.Bytes(); b > 1000 {
			t.Fatalf("resident bytes %d exceed budget after insert %d", b, i)
		}
	}
	// 4×300 = 1200 > 1000: the oldest entry must have gone.
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3", st.Len())
	}
	if st.Contains(key(0)) {
		t.Fatal("oldest key survived past the budget")
	}
	for i := 1; i < 4; i++ {
		if !st.Contains(key(i)) {
			t.Fatalf("key %d should be resident", i)
		}
	}
	if ev := reg.Counter("serve.store.evictions").Value(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	if g := reg.Gauge("serve.store.bytes").Value(); g != st.Bytes() {
		t.Fatalf("bytes gauge %d != resident %d", g, st.Bytes())
	}

	// Touch key(1) so key(2) is the LRU tail, then insert a new key and
	// check recency is what eviction follows.
	if _, err := st.Get(ctx, key(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(ctx, key(4)); err != nil {
		t.Fatal(err)
	}
	if st.Contains(key(2)) {
		t.Fatal("LRU tail survived; recency not honored")
	}
	if !st.Contains(key(1)) {
		t.Fatal("recently used key evicted")
	}

	// An evicted key is a fresh miss.
	before := atomic.LoadInt32(&calls)
	if _, err := st.Get(ctx, key(0)); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&calls) != before+1 {
		t.Fatal("evicted key did not re-synthesize")
	}
}

// TestOversizedBodyUncacheable: a body larger than a shard's budget
// slice is served but never cached.
func TestOversizedBodyUncacheable(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(func(k ChunkKey) ([]byte, error) {
		return make([]byte, 4096), nil
	}, StoreConfig{Shards: 1, BudgetBytes: 1024, Obs: reg})
	b, err := st.Get(context.Background(), key(0))
	if err != nil || len(b) != 4096 {
		t.Fatalf("Get = %d bytes, %v", len(b), err)
	}
	if st.Contains(key(0)) || st.Bytes() != 0 {
		t.Fatal("oversized body was cached")
	}
	if u := reg.Counter("serve.store.uncacheable").Value(); u != 1 {
		t.Fatalf("uncacheable = %d, want 1", u)
	}
}

// TestSynthErrorNotCached: a failed synthesis propagates its error and
// leaves nothing behind, so the next Get retries.
func TestSynthErrorNotCached(t *testing.T) {
	var calls int32
	st := NewStore(func(k ChunkKey) ([]byte, error) {
		if atomic.AddInt32(&calls, 1) == 1 {
			return nil, fmt.Errorf("flaky")
		}
		return []byte("ok"), nil
	}, StoreConfig{})
	if _, err := st.Get(context.Background(), key(0)); err == nil {
		t.Fatal("expected error from first synthesis")
	}
	if st.Contains(key(0)) {
		t.Fatal("error result was cached")
	}
	if _, err := st.Get(context.Background(), key(0)); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
}

// TestShardsPowerOfTwo pins the rounding and the shard mask.
func TestShardsPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 16}, {1, 1}, {3, 4}, {16, 16}, {17, 32},
	} {
		st := NewStore(func(ChunkKey) ([]byte, error) { return nil, nil }, StoreConfig{Shards: tc.in})
		if got := st.Shards(); got != tc.want {
			t.Errorf("Shards(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestParallelMixedWorkload hammers the store from many goroutines over
// a keyspace larger than the budget — run under -race this is the
// lock-striping soundness check.
func TestParallelMixedWorkload(t *testing.T) {
	st := NewStore(func(k ChunkKey) ([]byte, error) {
		return bytes.Repeat([]byte{byte(k.Index)}, 200), nil
	}, StoreConfig{Shards: 8, BudgetBytes: 8 * 1024})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 200; i++ {
				k := key((g*7 + i) % 100)
				b, err := st.Get(ctx, k)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if len(b) != 200 || b[0] != byte(k.Index) {
					t.Errorf("wrong body for %v", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if b := st.Bytes(); b > 8*1024 {
		t.Fatalf("resident bytes %d exceed budget", b)
	}
}

// TestWaiterCancelWhileLeaderSynthesizes is the regression pin for the
// Get contract: a non-leading caller already parked on someone else's
// flight must return promptly with its own ctx.Err() when canceled —
// not block until the leader finishes. Unlike TestWaiterContextCancel,
// which races the cancel against the waiter's entry, this test proves
// the waiter is inside the flight select (via the singleflight_shared
// counter) before pulling its context.
func TestWaiterCancelWhileLeaderSynthesizes(t *testing.T) {
	for _, tc := range []struct {
		name string
		ctx  func() (context.Context, context.CancelFunc)
		want error
	}{
		{"cancel", func() (context.Context, context.CancelFunc) {
			return context.WithCancel(context.Background())
		}, context.Canceled},
		{"deadline", func() (context.Context, context.CancelFunc) {
			return context.WithTimeout(context.Background(), 10*time.Millisecond)
		}, context.DeadlineExceeded},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			entered := make(chan struct{})
			release := make(chan struct{})
			st := NewStore(func(k ChunkKey) ([]byte, error) {
				close(entered)
				<-release
				return []byte("ok"), nil
			}, StoreConfig{Obs: reg})

			k := key(9)
			leaderDone := make(chan error, 1)
			go func() {
				_, err := st.Get(context.Background(), k)
				leaderDone <- err
			}()
			<-entered // leader is parked inside synth

			ctx, cancel := tc.ctx()
			defer cancel()
			waiterDone := make(chan error, 1)
			go func() {
				_, err := st.Get(ctx, k)
				waiterDone <- err
			}()
			// The shared counter ticks after the waiter joins the flight
			// and before it parks in the select; once it reads 1 the
			// waiter can only be at (or headed into) the select, where
			// ctx.Done() must win.
			shared := reg.Counter("serve.store.singleflight_shared")
			for shared.Value() == 0 {
				runtime.Gosched()
			}
			if tc.name == "cancel" {
				cancel()
			}
			select {
			case err := <-waiterDone:
				if err != tc.want {
					t.Fatalf("waiter error = %v, want %v", err, tc.want)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("waiter still blocked on the leader's synthesis after its context died")
			}
			close(release)
			if err := <-leaderDone; err != nil {
				t.Fatalf("leader error: %v", err)
			}
			if !st.Contains(k) {
				t.Fatal("flight should have completed and cached despite the canceled waiter")
			}
		})
	}
}

// TestResetDropsEverything pins the crash-restart semantics the cluster
// tier relies on: Reset empties every shard and zeroes the byte gauge,
// and the next Get re-misses.
func TestResetDropsEverything(t *testing.T) {
	var calls int32
	reg := obs.NewRegistry()
	st := NewStore(func(k ChunkKey) ([]byte, error) {
		atomic.AddInt32(&calls, 1)
		return bytes.Repeat([]byte{2}, 100), nil
	}, StoreConfig{Shards: 4, BudgetBytes: 1 << 20, Obs: reg})
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := st.Get(ctx, key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 20 || st.Bytes() == 0 {
		t.Fatalf("warmup: Len=%d Bytes=%d", st.Len(), st.Bytes())
	}
	st.Reset()
	if st.Len() != 0 {
		t.Fatalf("Len = %d after Reset, want 0", st.Len())
	}
	if st.Bytes() != 0 {
		t.Fatalf("Bytes = %d after Reset, want 0", st.Bytes())
	}
	if got := reg.Gauge("serve.store.bytes").Value(); got != 0 {
		t.Fatalf("bytes gauge = %d after Reset, want 0", got)
	}
	if _, err := st.Get(ctx, key(0)); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&calls) != 21 {
		t.Fatalf("synth calls = %d, want a re-miss after Reset", calls)
	}
}

package faults

import (
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Rule describes one server-side fault the Injector may apply to a
// request. Probabilities draw from the injector's seeded stream, so a
// given seed and request order replay the same faults.
type Rule struct {
	// From and To bound the window (time since the injector's first
	// request) in which the rule is live. A zero To means forever.
	From, To time.Duration
	// PathContains filters request URLs; empty matches every request.
	PathContains string
	// ErrorProb is the probability of replying with ErrorStatus instead
	// of serving; ErrorStatus defaults to 503.
	ErrorProb   float64
	ErrorStatus int
	// TruncateProb is the probability of cutting the response body short
	// while keeping the declared Content-Length, so the client observes
	// an unexpected EOF mid-segment.
	TruncateProb float64
	// DelayProb is the probability of sleeping Delay before serving.
	DelayProb float64
	Delay     time.Duration
	// MaxCount caps how many times this rule fires (0 = unlimited);
	// e.g. MaxCount 1 with TruncateProb 1 truncates exactly one segment.
	MaxCount int
}

// Stats counts what an injector has done.
type Stats struct {
	Requests, Errors, Truncations, Delays int64
}

// Injector is an http.Handler middleware injecting 5xx responses,
// truncated segment bodies, and response delays into a dash.Server
// with deterministic seeded randomness.
type Injector struct {
	// Rules are evaluated in order for each request; an error rule
	// short-circuits the handler.
	Rules []Rule
	// Seed drives the probability stream.
	Seed int64
	// Sleep implements delays; replaceable in tests. Defaults to
	// time.Sleep.
	Sleep func(time.Duration)

	mu    sync.Mutex
	rng   *rand.Rand
	start time.Time
	fired map[int]int
	stats Stats
}

// NewInjector builds an injector with the given seed and rules.
func NewInjector(seed int64, rules ...Rule) *Injector {
	return &Injector{Rules: rules, Seed: seed}
}

// Stats returns a snapshot of the injection counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// roll draws from the seeded stream under the lock.
func (in *Injector) roll(prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	if in.rng == nil {
		in.rng = rand.New(rand.NewSource(in.Seed))
	}
	return in.rng.Float64() < prob
}

// decision is what one request should suffer.
type decision struct {
	delay    time.Duration
	status   int
	truncate bool
}

func (in *Injector) decide(path string) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.fired == nil {
		in.fired = make(map[int]int)
	}
	if in.start.IsZero() {
		in.start = time.Now()
	}
	in.stats.Requests++
	elapsed := time.Since(in.start)
	var d decision
	for i, r := range in.Rules {
		if elapsed < r.From || (r.To > 0 && elapsed >= r.To) {
			continue
		}
		if r.PathContains != "" && !strings.Contains(path, r.PathContains) {
			continue
		}
		if r.MaxCount > 0 && in.fired[i] >= r.MaxCount {
			continue
		}
		hit := false
		if d.delay == 0 && r.Delay > 0 && in.roll(r.DelayProb) {
			d.delay = r.Delay
			in.stats.Delays++
			hit = true
		}
		if d.status == 0 && in.roll(r.ErrorProb) {
			d.status = r.ErrorStatus
			if d.status == 0 {
				d.status = http.StatusServiceUnavailable
			}
			in.stats.Errors++
			hit = true
		}
		if !d.truncate && d.status == 0 && in.roll(r.TruncateProb) {
			d.truncate = true
			in.stats.Truncations++
			hit = true
		}
		if hit {
			in.fired[i]++
		}
	}
	return d
}

// Wrap returns next with the injector's faults applied in front of it.
func (in *Injector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := in.decide(r.URL.Path)
		if d.delay > 0 {
			sleep := in.Sleep
			if sleep == nil {
				sleep = time.Sleep
			}
			sleep(d.delay)
		}
		if d.status != 0 {
			http.Error(w, "faults: injected failure", d.status)
			return
		}
		if d.truncate {
			w = &truncatingWriter{ResponseWriter: w, limit: -1}
		}
		next.ServeHTTP(w, r)
	})
}

// truncatingWriter lets the handler set headers (including
// Content-Length) normally, then forwards only half of the declared
// body and swallows the rest, reporting success to the handler. The
// net/http server detects the short write and severs the connection, so
// the client sees a mid-body EOF — the truncated-segment failure mode.
type truncatingWriter struct {
	http.ResponseWriter
	limit   int64 // -1 until the first write fixes it
	written int64
}

func (w *truncatingWriter) Write(b []byte) (int, error) {
	if w.limit < 0 {
		w.limit = 1
		if cl, err := strconv.ParseInt(w.Header().Get("Content-Length"), 10, 64); err == nil && cl > 1 {
			w.limit = cl / 2
		}
	}
	n := len(b)
	if room := w.limit - w.written; room < int64(len(b)) {
		b = b[:room]
	}
	if len(b) > 0 {
		if _, err := w.ResponseWriter.Write(b); err != nil {
			return 0, err
		}
		w.written += int64(len(b))
	}
	return n, nil
}

package faults

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// payloadHandler serves a fixed body with an explicit Content-Length,
// the way dash.Server serves segments.
func payloadHandler(n int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, n)
		for i := range body {
			body[i] = byte(i)
		}
		w.Header().Set("Content-Length", strconv.Itoa(n))
		w.Write(body)
	})
}

func TestInjectorErrorRule(t *testing.T) {
	in := NewInjector(1, Rule{ErrorProb: 1, ErrorStatus: http.StatusBadGateway})
	srv := httptest.NewServer(in.Wrap(payloadHandler(64)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	if st := in.Stats(); st.Errors != 1 || st.Requests != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestInjectorErrorStatusDefaults503(t *testing.T) {
	in := NewInjector(1, Rule{ErrorProb: 1})
	srv := httptest.NewServer(in.Wrap(payloadHandler(8)))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}

func TestInjectorTruncationCutsBodyShort(t *testing.T) {
	in := NewInjector(1, Rule{TruncateProb: 1})
	srv := httptest.NewServer(in.Wrap(payloadHandler(10000)))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 before the cut", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read %d bytes with no error; want a mid-body failure", len(body))
	}
	if len(body) >= 10000 {
		t.Fatal("body not truncated")
	}
	if st := in.Stats(); st.Truncations != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestInjectorMaxCountLimitsFirings(t *testing.T) {
	in := NewInjector(1, Rule{ErrorProb: 1, MaxCount: 2})
	srv := httptest.NewServer(in.Wrap(payloadHandler(16)))
	defer srv.Close()
	codes := []int{}
	for i := 0; i < 4; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	want := []int{503, 503, 200, 200}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("codes %v, want %v", codes, want)
		}
	}
}

func TestInjectorWindowAndPathFilter(t *testing.T) {
	in := NewInjector(1,
		Rule{From: time.Hour, ErrorProb: 1},           // not yet live
		Rule{PathContains: "/segment/", ErrorProb: 1}, // wrong path below
	)
	srv := httptest.NewServer(in.Wrap(payloadHandler(16)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/manifest.mpd")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d; no rule should have matched", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/segment/3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatal("path-filtered rule did not fire")
	}
}

func TestInjectorDelayRule(t *testing.T) {
	var slept time.Duration
	in := NewInjector(1, Rule{DelayProb: 1, Delay: 250 * time.Millisecond})
	in.Sleep = func(d time.Duration) { slept = d }
	srv := httptest.NewServer(in.Wrap(payloadHandler(16)))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if slept != 250*time.Millisecond {
		t.Fatalf("slept %v, want 250ms", slept)
	}
	if st := in.Stats(); st.Delays != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestInjectorSeededStreamIsDeterministic(t *testing.T) {
	run := func() []int {
		in := NewInjector(1234, Rule{ErrorProb: 0.5})
		srv := httptest.NewServer(in.Wrap(payloadHandler(16)))
		defer srv.Close()
		var codes []int
		for i := 0; i < 16; i++ {
			resp, err := http.Get(srv.URL)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes = append(codes, resp.StatusCode)
		}
		return codes
	}
	a, b := run(), run()
	errs := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: %d vs %d across identical seeds", i, a[i], b[i])
		}
		if a[i] == http.StatusServiceUnavailable {
			errs++
		}
	}
	if errs == 0 || errs == 16 {
		t.Fatalf("0.5 error rate produced %d/16 errors", errs)
	}
}

package faults

import (
	"strings"
	"testing"
	"time"

	"sperke/internal/netem"
	"sperke/internal/sim"
)

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "outage:wifi:10s:2s,cliff:lte:5s:3s:500k,loss:*:20s:5s:0.3,stall:wifi:8s:1s"
	plan := MustParse(spec)
	if len(plan.Events) != 4 {
		t.Fatalf("parsed %d events, want 4", len(plan.Events))
	}
	if got := plan.Spec(); got != spec {
		t.Fatalf("Spec() = %q, want %q", got, spec)
	}
	e := plan.Events[1]
	if e.Kind != KindCliff || e.Path != "lte" || e.At != 5*time.Second ||
		e.Duration != 3*time.Second || e.BPS != 500e3 {
		t.Fatalf("cliff event parsed wrong: %+v", e)
	}
	if plan.Horizon() != 25*time.Second {
		t.Fatalf("Horizon = %v, want 25s", plan.Horizon())
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"",
		"outage:wifi:10s",                  // missing duration
		"melt:wifi:0:1s",                   // unknown kind
		"cliff:wifi:0:1s",                  // cliff without rate
		"loss:wifi:0:1s",                   // loss without probability
		"loss:wifi:0:1s:1.5",               // loss out of range
		"outage:wifi:0:1s:extra",           // stray parameter
		"outage:wifi:bogus:1s",             // bad time
		"outage:wifi:0:0",                  // zero duration
		"loss:w:0:5s:0.2,loss:w:2s:5s:0.3", // overlapping loss bursts
	} {
		if _, err := Parse(spec); err == nil {
			t.Fatalf("Parse(%q) accepted garbage", spec)
		}
	}
}

func TestKindStringsCoverEveryKind(t *testing.T) {
	for _, k := range sortedKinds() {
		if s := k.String(); strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
}

func TestApplyOutageBlacksOutPath(t *testing.T) {
	clock := sim.NewClock(7)
	wifi := netem.NewPath(clock, "wifi", netem.Constant(8e6), 0, 0)
	plan := MustParse("outage:wifi:1s:2s")
	if err := plan.Apply(clock, wifi); err != nil {
		t.Fatal(err)
	}
	if !wifi.InOutage(1500 * time.Millisecond) {
		t.Fatal("outage window not registered on the path")
	}
	// A transfer already in service stalls through the window (trace
	// clamp), one submitted inside it defers (outage semantics).
	var early, mid netem.Delivery
	wifi.Transfer(1.5e6, netem.Reliable, func(d netem.Delivery) { early = d })
	clock.Schedule(1500*time.Millisecond, func() {
		wifi.Transfer(1e6, netem.Reliable, func(d netem.Delivery) { mid = d })
	})
	clock.Run()
	// 12 Mbit at 8 Mbit/s: 8 Mbit in the first second, stall 1s..3s,
	// remaining 4 Mbit by 3.5s.
	if early.Done != 3500*time.Millisecond {
		t.Fatalf("spanning transfer Done = %v, want 3.5s", early.Done)
	}
	if mid.Service < 3500*time.Millisecond {
		t.Fatalf("mid-outage transfer served at %v, inside the blackout", mid.Service)
	}
}

func TestApplyCliffSlowsPath(t *testing.T) {
	clock := sim.NewClock(7)
	lte := netem.NewPath(clock, "lte", netem.Constant(8e6), 0, 0)
	MustParse("cliff:lte:0:10s:1M").Apply(clock, lte)
	var d netem.Delivery
	lte.Transfer(1e6, netem.Reliable, func(x netem.Delivery) { d = x })
	clock.Run()
	// 8 Mbit at the 1 Mbit/s cliff rate = 8s.
	if d.Done != 8*time.Second {
		t.Fatalf("Done = %v, want 8s under the cliff", d.Done)
	}
}

func TestApplyLossBurstRaisesAndRestoresLoss(t *testing.T) {
	clock := sim.NewClock(7)
	lte := netem.NewPath(clock, "lte", netem.Constant(8e6), 0, 0.01)
	MustParse("loss:lte:1s:2s:0.5").Apply(clock, lte)
	samples := map[time.Duration]float64{}
	for _, at := range []time.Duration{0, 1500 * time.Millisecond, 4 * time.Second} {
		at := at
		clock.Schedule(at, func() { samples[at] = lte.Loss })
	}
	clock.Run()
	if samples[0] != 0.01 {
		t.Fatalf("loss before burst = %v, want 0.01", samples[0])
	}
	if samples[1500*time.Millisecond] != 0.5 {
		t.Fatalf("loss during burst = %v, want 0.5", samples[1500*time.Millisecond])
	}
	if samples[4*time.Second] != 0.01 {
		t.Fatalf("loss after burst = %v, want restored 0.01", samples[4*time.Second])
	}
}

func TestApplyStallFreezesPathAtEventTime(t *testing.T) {
	clock := sim.NewClock(7)
	wifi := netem.NewPath(clock, "wifi", netem.Constant(8e6), 0, 0)
	MustParse("stall:wifi:1s:2s").Apply(clock, wifi)
	var d netem.Delivery
	clock.Schedule(time.Second, func() {
		wifi.Transfer(1e6, netem.Reliable, func(x netem.Delivery) { d = x })
	})
	clock.Run()
	if d.Service != 3*time.Second {
		t.Fatalf("Service = %v, want 3s (1s event + 2s stall)", d.Service)
	}
}

func TestApplyWildcardHitsEveryPath(t *testing.T) {
	clock := sim.NewClock(7)
	wifi := netem.NewPath(clock, "wifi", netem.Constant(8e6), 0, 0)
	lte := netem.NewPath(clock, "lte", netem.Constant(8e6), 0, 0)
	MustParse("outage:*:0:1s").Apply(clock, wifi, lte)
	if !wifi.InOutage(0) || !lte.InOutage(0) {
		t.Fatal("wildcard outage missed a path")
	}
}

// fakeNodeTarget records kill/recover calls with the virtual time they
// fired at.
type fakeNodeTarget struct {
	names []string
	clock *sim.Clock
	log   []string
}

func (f *fakeNodeTarget) NodeNames() []string { return f.names }
func (f *fakeNodeTarget) KillNode(name string) {
	f.log = append(f.log, "kill:"+name+"@"+f.clock.Now().String())
}
func (f *fakeNodeTarget) RecoverNode(name string) {
	f.log = append(f.log, "recover:"+name+"@"+f.clock.Now().String())
}

func TestParseNodeOutageRoundTrip(t *testing.T) {
	spec := "node:edge-1:10s:5s"
	plan := MustParse(spec)
	if got := plan.Spec(); got != spec {
		t.Fatalf("Spec() = %q, want %q", got, spec)
	}
	e := plan.Events[0]
	if e.Kind != KindNodeOutage || e.Path != "edge-1" ||
		e.At != 10*time.Second || e.Duration != 5*time.Second {
		t.Fatalf("node event parsed wrong: %+v", e)
	}
	if _, err := Parse("node:edge-1:10s:5s:extra"); err == nil {
		t.Fatal("node event with a stray parameter accepted")
	}
}

func TestNodeOutageConstructor(t *testing.T) {
	e := NodeOutage("edge-2", 10*time.Second, 15*time.Second)
	if e.Path != "edge-2" || e.At != 10*time.Second || e.Duration != 5*time.Second {
		t.Fatalf("NodeOutage built %+v", e)
	}
	// recoverAt <= at means a non-positive window; Validate rejects it.
	bad := &Plan{Events: []Event{NodeOutage("edge-2", 10*time.Second, 10*time.Second)}}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted recoverAt == at")
	}
}

func TestApplyNodesSchedulesKillAndRecover(t *testing.T) {
	clock := sim.NewClock(7)
	target := &fakeNodeTarget{names: []string{"edge-0", "edge-1"}, clock: clock}
	if err := MustParse("node:edge-1:10s:5s").ApplyNodes(clock, target); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(12 * time.Second)
	if len(target.log) != 1 || target.log[0] != "kill:edge-1@10s" {
		t.Fatalf("mid-outage log = %v, want the kill alone", target.log)
	}
	clock.RunUntil(20 * time.Second)
	want := []string{"kill:edge-1@10s", "recover:edge-1@15s"}
	if len(target.log) != 2 || target.log[0] != want[0] || target.log[1] != want[1] {
		t.Fatalf("log = %v, want %v", target.log, want)
	}
}

func TestApplyNodesWildcardHitsEveryNode(t *testing.T) {
	clock := sim.NewClock(7)
	target := &fakeNodeTarget{names: []string{"edge-0", "edge-1"}, clock: clock}
	if err := MustParse("node:*:1s:1s").ApplyNodes(clock, target); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(3 * time.Second)
	if len(target.log) != 4 {
		t.Fatalf("wildcard produced %d calls, want kill+recover per node: %v", len(target.log), target.log)
	}
}

func TestApplyNodesRejectsUnknownNode(t *testing.T) {
	clock := sim.NewClock(7)
	target := &fakeNodeTarget{names: []string{"edge-0"}, clock: clock}
	if err := MustParse("node:edge-9:1s:1s").ApplyNodes(clock, target); err == nil {
		t.Fatal("ApplyNodes armed an event against a node that does not exist")
	}
}

func TestApplySkipsNodeEventsAndApplyNodesSkipsPathEvents(t *testing.T) {
	clock := sim.NewClock(7)
	wifi := netem.NewPath(clock, "wifi", netem.Constant(8e6), 0, 0)
	target := &fakeNodeTarget{names: []string{"edge-0"}, clock: clock}
	// One plan scripting both domains: each Apply variant arms only its
	// own kinds and ignores the other's without erroring.
	plan := MustParse("outage:wifi:1s:1s,node:edge-0:2s:1s")
	if err := plan.Apply(clock, wifi); err != nil {
		t.Fatalf("Apply tripped over the node event: %v", err)
	}
	if err := plan.ApplyNodes(clock, target); err != nil {
		t.Fatalf("ApplyNodes tripped over the outage event: %v", err)
	}
	clock.RunUntil(5 * time.Second)
	if !wifi.InOutage(1500 * time.Millisecond) {
		t.Fatal("outage event not armed")
	}
	if len(target.log) != 2 {
		t.Fatalf("node event not armed: %v", target.log)
	}
}

func TestApplyIsDeterministic(t *testing.T) {
	run := func() []time.Duration {
		clock := sim.NewClock(99)
		p := netem.NewPath(clock, "lte", netem.Constant(8e6), 0, 0)
		MustParse("loss:lte:0:10s:0.4").Apply(clock, p)
		var done []time.Duration
		for i := 0; i < 20; i++ {
			// Staggered submissions so every transfer starts inside the
			// burst window (loss is sampled at submission time).
			clock.Schedule(time.Duration(i)*300*time.Millisecond, func() {
				p.Transfer(2e5, netem.BestEffort, func(d netem.Delivery) {
					if d.OK {
						done = append(done, d.Done)
					}
				})
			})
		}
		clock.Run()
		return done
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ: %d vs %d survivors", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) == 20 || len(a) == 0 {
		t.Fatalf("0.4 loss should drop some of 20 transfers, kept %d", len(a))
	}
}

// Package faults is Sperke's fault-injection framework: scriptable
// plans of timed network faults that drive netem paths, and an HTTP
// middleware that injects server-side failures into a dash.Server.
// Together they reproduce the degraded regimes the paper measures —
// flaky WiFi+LTE multipath (§3.3) and the constrained network
// conditions of Table 2 (§3.4) — as deterministic, replayable chaos
// that the resilience layer (dash retries, transport circuit breakers,
// live spatial fallback) is tested against.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"sperke/internal/netem"
	"sperke/internal/sim"
)

// Kind is the category of one fault event.
type Kind int

// Fault kinds.
const (
	// KindOutage blacks a path out: zero rate over the window, transfers
	// beginning inside it deferred (reliable) or lost (best-effort).
	KindOutage Kind = iota
	// KindCliff caps a path's bandwidth at BPS over the window.
	KindCliff
	// KindLossBurst raises a path's loss rate to Loss over the window.
	KindLossBurst
	// KindStall freezes a path's queue for Duration starting at At.
	KindStall
	// KindNodeOutage crashes a named cluster node at At and restarts it
	// Duration later — the node-loss regime of the edge/origin tier.
	// Node events are armed with ApplyNodes against a NodeTarget; Apply
	// skips them (they name nodes, not netem paths).
	KindNodeOutage
)

var kindNames = map[Kind]string{
	KindOutage:     "outage",
	KindCliff:      "cliff",
	KindLossBurst:  "loss",
	KindStall:      "stall",
	KindNodeOutage: "node",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one timed fault.
type Event struct {
	Kind Kind
	// Path names the target netem path; "*" (or empty) targets every
	// path the plan is applied to.
	Path string
	// At is when the fault begins; Duration how long it lasts.
	At       time.Duration
	Duration time.Duration
	// BPS is the capped rate during a KindCliff window.
	BPS float64
	// Loss is the loss probability during a KindLossBurst window.
	Loss float64
}

func (e Event) matches(name string) bool {
	return e.Path == "" || e.Path == "*" || e.Path == name
}

// NodeOutage builds a node-outage event: node crashes at `at` and
// restarts at `recoverAt`. Validate rejects recoverAt <= at (model a
// node that never returns with a recovery past the run's horizon).
func NodeOutage(node string, at, recoverAt time.Duration) Event {
	return Event{Kind: KindNodeOutage, Path: node, At: at, Duration: recoverAt - at}
}

// Plan is a script of fault events replayed against a set of paths.
// Plans are deterministic: applying the same plan to the same paths on
// the same clock seed reproduces the same chaos byte for byte.
type Plan struct {
	Events []Event
}

// Add appends an event and returns the plan for chaining.
func (p *Plan) Add(e Event) *Plan {
	p.Events = append(p.Events, e)
	return p
}

// Validate checks the plan is applicable: non-negative times, loss in
// [0,1), positive durations for windowed faults, and no overlapping
// loss bursts on one path (their restore events would race).
func (p *Plan) Validate() error {
	for i, e := range p.Events {
		if e.At < 0 {
			return fmt.Errorf("faults: event %d starts at negative time %v", i, e.At)
		}
		if e.Duration <= 0 {
			return fmt.Errorf("faults: event %d has non-positive duration %v", i, e.Duration)
		}
		if e.Kind == KindLossBurst && (e.Loss < 0 || e.Loss >= 1) {
			return fmt.Errorf("faults: event %d loss %v out of [0,1)", i, e.Loss)
		}
		if e.Kind == KindCliff && e.BPS < 0 {
			return fmt.Errorf("faults: event %d negative cliff rate %v", i, e.BPS)
		}
		if e.Kind != KindLossBurst {
			continue
		}
		for j, o := range p.Events[:i] {
			if o.Kind == KindLossBurst && (o.matches(e.Path) || e.matches(o.Path)) &&
				e.At < o.At+o.Duration && o.At < e.At+e.Duration {
				return fmt.Errorf("faults: loss bursts %d and %d overlap on path %q", j, i, e.Path)
			}
		}
	}
	return nil
}

// Apply arms the plan against the given paths on the given clock.
// Rate-shaped faults (outages, cliffs) are carved into the paths'
// traces immediately so transfers already in service stall through
// them; loss bursts and stalls are scheduled as clock events. Apply
// must run before the clock advances past any event start.
func (p *Plan) Apply(clock *sim.Clock, paths ...*netem.Path) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for _, e := range p.Events {
		if e.Kind == KindNodeOutage {
			// Node outages target cluster nodes, not netem paths; arm
			// them against the cluster with ApplyNodes. Skipping (rather
			// than erroring) lets one plan script both domains.
			continue
		}
		matched := false
		for _, path := range paths {
			if !e.matches(path.Name) {
				continue
			}
			matched = true
			end := e.At + e.Duration
			switch e.Kind {
			case KindOutage:
				path.AddOutage(e.At, end)
				path.SetTrace(path.Trace().Clamp(e.At, end, 0))
			case KindCliff:
				path.SetTrace(path.Trace().Clamp(e.At, end, e.BPS))
			case KindLossBurst:
				path, loss := path, e.Loss
				clock.Schedule(e.At, func() {
					old := path.Loss
					path.Loss = loss
					clock.Schedule(end, func() { path.Loss = old })
				})
			case KindStall:
				path, d := path, e.Duration
				clock.Schedule(e.At, func() { path.Stall(d) })
			default:
				return fmt.Errorf("faults: unknown kind %v", e.Kind)
			}
		}
		if !matched {
			// A typo'd path name silently arming nothing is a chaos test
			// that tests nothing — surface it.
			return fmt.Errorf("faults: event %s:%s:%v matches none of the given paths",
				e.Kind, e.Path, e.At)
		}
	}
	return nil
}

// NodeTarget is the surface node-outage events drive: a component —
// canonically the edge/origin cluster — whose named nodes can crash
// and recover. KillNode and RecoverNode must tolerate repeated calls.
type NodeTarget interface {
	// NodeNames lists the target's node names, for eager validation of
	// the plan's node references.
	NodeNames() []string
	// KillNode crashes the named node; RecoverNode restarts it.
	KillNode(name string)
	RecoverNode(name string)
}

// ApplyNodes arms the plan's node-outage events against target on the
// given clock, reusing the same timed-event scheduler the netem kinds
// ride: KillNode fires at At, RecoverNode at At+Duration. Non-node
// events are skipped (arm those with Apply); a node event naming no
// node of the target is an error, mirroring Apply's unmatched-path
// check, and "*" (or empty) crashes every node.
func (p *Plan) ApplyNodes(clock *sim.Clock, target NodeTarget) error {
	if err := p.Validate(); err != nil {
		return err
	}
	names := target.NodeNames()
	for _, e := range p.Events {
		if e.Kind != KindNodeOutage {
			continue
		}
		matched := false
		for _, name := range names {
			if !e.matches(name) {
				continue
			}
			matched = true
			name := name
			clock.Schedule(e.At, func() { target.KillNode(name) })
			clock.Schedule(e.At+e.Duration, func() { target.RecoverNode(name) })
		}
		if !matched {
			return fmt.Errorf("faults: node event %s:%s:%v matches none of the target's nodes",
				e.Kind, e.Path, e.At)
		}
	}
	return nil
}

// Parse builds a plan from its compact textual form, the scriptable
// format CLI flags and experiment configs use (the role `tc` scripts
// play in the paper's testbed):
//
//	"outage:wifi:10s:2s,cliff:lte:5s:3s:500k,loss:*:20s:5s:0.3,stall:wifi:8s:1s"
//	"node:edge-1:10s:5s"   // crash edge-1 at 10s, restart at 15s
//
// Each comma-separated event is kind:path:at:duration[:param]; at and
// duration use Go duration syntax ("0" allowed), cliff rates accept
// k/M/G suffixes in bits per second, loss is a probability. For "node"
// events the path field names a cluster node (ApplyNodes arms them).
func Parse(spec string) (*Plan, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("faults: empty plan spec")
	}
	plan := &Plan{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		fields := strings.Split(part, ":")
		if len(fields) < 4 {
			return nil, fmt.Errorf("faults: event %q is not kind:path:at:duration[:param]", part)
		}
		var e Event
		found := false
		for k, n := range kindNames {
			if n == fields[0] {
				e.Kind, found = k, true
			}
		}
		if !found {
			return nil, fmt.Errorf("faults: unknown kind %q in %q", fields[0], part)
		}
		e.Path = fields[1]
		var err error
		if e.At, err = parseDur(fields[2]); err != nil {
			return nil, fmt.Errorf("faults: event %q: %w", part, err)
		}
		if e.Duration, err = parseDur(fields[3]); err != nil {
			return nil, fmt.Errorf("faults: event %q: %w", part, err)
		}
		switch {
		case e.Kind == KindCliff:
			if len(fields) != 5 {
				return nil, fmt.Errorf("faults: cliff %q needs a rate", part)
			}
			if e.BPS, err = parseRate(fields[4]); err != nil {
				return nil, fmt.Errorf("faults: event %q: %w", part, err)
			}
		case e.Kind == KindLossBurst:
			if len(fields) != 5 {
				return nil, fmt.Errorf("faults: loss %q needs a probability", part)
			}
			if e.Loss, err = strconv.ParseFloat(fields[4], 64); err != nil {
				return nil, fmt.Errorf("faults: event %q: %w", part, err)
			}
		case len(fields) != 4:
			return nil, fmt.Errorf("faults: event %q takes no parameter", part)
		}
		plan.Add(e)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// MustParse is Parse that panics on error, for literals in tests and
// experiment setups.
func MustParse(spec string) *Plan {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Spec renders the plan back into Parse's format.
func (p *Plan) Spec() string {
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		path := e.Path
		if path == "" {
			path = "*"
		}
		s := fmt.Sprintf("%s:%s:%s:%s", e.Kind, path, formatDur(e.At), formatDur(e.Duration))
		switch e.Kind {
		case KindCliff:
			s += ":" + formatRate(e.BPS)
		case KindLossBurst:
			s += ":" + strconv.FormatFloat(e.Loss, 'f', -1, 64)
		}
		parts[i] = s
	}
	return strings.Join(parts, ",")
}

// Horizon returns the end time of the last fault in the plan — how long
// a chaos run must last to replay everything.
func (p *Plan) Horizon() time.Duration {
	var h time.Duration
	for _, e := range p.Events {
		if end := e.At + e.Duration; end > h {
			h = end
		}
	}
	return h
}

// sortedKinds is used by tests to iterate kinds deterministically.
func sortedKinds() []Kind {
	ks := make([]Kind, 0, len(kindNames))
	for k := range kindNames {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func parseDur(s string) (time.Duration, error) {
	if s == "0" {
		return 0, nil
	}
	return time.ParseDuration(s)
}

func formatDur(d time.Duration) string {
	if d == 0 {
		return "0"
	}
	return d.String()
}

// parseRate parses "8M", "1.5M", "500k", "2G" or a bare number into
// bits per second (same grammar as netem trace specs).
func parseRate(s string) (float64, error) {
	s = strings.TrimSpace(s)
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1e9, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult, s = 1e6, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "k"):
		mult, s = 1e3, strings.TrimSuffix(s, "k")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, fmt.Errorf("negative rate %q", s)
	}
	return v * mult, nil
}

func formatRate(bps float64) string {
	switch {
	case bps >= 1e9 && bps == float64(int64(bps/1e9))*1e9:
		return strconv.FormatFloat(bps/1e9, 'f', -1, 64) + "G"
	case bps >= 1e6:
		return strconv.FormatFloat(bps/1e6, 'f', -1, 64) + "M"
	case bps >= 1e3:
		return strconv.FormatFloat(bps/1e3, 'f', -1, 64) + "k"
	default:
		return strconv.FormatFloat(bps, 'f', -1, 64)
	}
}

package abr

import (
	"sort"
	"time"

	"sperke/internal/hmp"
	"sperke/internal/sphere"
	"sperke/internal/tiling"
)

// TileQuality is one planned fetch: a tile at a quality level.
type TileQuality struct {
	Tile    tiling.TileID
	Quality int
	// Probability is the estimated chance the tile ends up in view —
	// 1 for FoV tiles, the HMP/crowd estimate for OOS tiles.
	Probability float64
}

// OOSPolicy parameterizes out-of-sight chunk selection (§3.1.2 part
// two). The zero value is a sensible default.
type OOSPolicy struct {
	// MaxRing caps how many grid rings beyond the FoV may be fetched;
	// 0 defaults to 2.
	MaxRing int
	// QualityDropPerRing lowers OOS quality by this many ladder levels
	// per ring of distance ("the further away ... the lower their
	// qualities", §3.1.1); 0 defaults to 1.
	QualityDropPerRing int
	// BudgetBytes caps the total planned OOS bytes; 0 means no cap.
	BudgetBytes int64
	// MinCrowdProb prunes OOS tiles whose crowd probability falls below
	// this threshold when a heatmap is available.
	MinCrowdProb float64
}

func (p OOSPolicy) maxRing() int {
	if p.MaxRing <= 0 {
		return 2
	}
	return p.MaxRing
}

func (p OOSPolicy) drop() int {
	if p.QualityDropPerRing <= 0 {
		return 1
	}
	return p.QualityDropPerRing
}

// OOSInput gathers what OOS planning consumes.
type OOSInput struct {
	Grid       tiling.Grid
	Projection sphere.Projection
	// FoVTiles is the super chunk's tile set (already planned at FoVQuality).
	FoVTiles   []tiling.TileID
	FoVQuality int
	// Prediction provides the uncertainty radius that sizes the rings.
	Prediction hmp.Prediction
	// FoV is the viewport geometry (used to convert the radius into ring
	// counts).
	FoV sphere.FoV
	// Heatmap, when non-nil, reweights and prunes OOS tiles by crowd
	// probability (§3.2).
	Heatmap *hmp.Heatmap
	// At is the chunk interval start the plan targets.
	At time.Duration
	// SpeedBound, if positive, prunes tiles the user cannot physically
	// reach before the chunk plays (degrees/second; §3.2).
	SpeedBound float64
	// TimeToPlay is how far in the future the chunk plays (for the speed
	// bound pruning).
	TimeToPlay time.Duration
	// SizeAt returns the fetch size of one tile-chunk at quality q.
	SizeAt func(tile tiling.TileID, q int) int64
}

// PlanOOS selects the out-of-sight tiles to fetch around a super chunk
// and their qualities. The ring count grows with prediction
// uncertainty; quality falls with ring distance; the crowd heatmap
// promotes popular tiles and prunes unpopular ones; the user's speed
// bound prunes unreachable tiles; and an optional byte budget truncates
// the plan lowest-probability-first.
func PlanOOS(in OOSInput, pol OOSPolicy) []TileQuality {
	if in.FoVQuality < 0 {
		return nil
	}
	// Ring count from uncertainty: one ring per tile-width of prediction
	// radius beyond the FoV edge.
	tileWidthDeg := 360.0 / float64(in.Grid.Cols)
	rings := int(in.Prediction.Radius/tileWidthDeg) + 1
	if rings > pol.maxRing() {
		rings = pol.maxRing()
	}
	// Fully random head movement (radius ≈ 180) floods the whole sphere —
	// the §3.1.2 worst case — which MaxRing caps.

	var plan []TileQuality
	seen := make(map[tiling.TileID]bool, len(in.FoVTiles))
	for _, id := range in.FoVTiles {
		seen[id] = true
	}
	for ring := 1; ring <= rings; ring++ {
		q := in.FoVQuality - ring*pol.drop()
		if q < 0 {
			q = 0
		}
		for _, id := range tiling.Ring(in.Grid, in.FoVTiles, ring) {
			if seen[id] {
				continue
			}
			seen[id] = true
			prob := probForRing(ring, in.Prediction.Radius, tileWidthDeg)
			tileQ := q
			if in.Heatmap != nil {
				cp := in.Heatmap.Probability(in.At, id)
				// Blend personal-motion geometry with crowd statistics.
				prob = 0.5*prob + 0.5*cp
				if cp < pol.MinCrowdProb {
					if ring > 1 {
						continue // crowd says nobody looks there
					}
					// Near ring: keep coverage, but cheapen it.
					if tileQ > 0 {
						tileQ--
					}
				}
				// Strongly crowd-favored tiles ride one level higher —
				// "use the crowd-sourced data to add OOS chunks" (§3.2).
				if cp > 0.75 && tileQ < in.FoVQuality-1 {
					tileQ++
				}
			}
			if in.SpeedBound > 0 && in.TimeToPlay > 0 {
				// Prune tiles whose centers the user cannot reach in time.
				reach := in.SpeedBound*in.TimeToPlay.Seconds() + in.FoV.Width/2
				d := sphere.AngularDistance(in.Prediction.View, in.Grid.Center(id, in.Projection))
				if d > reach {
					continue
				}
			}
			plan = append(plan, TileQuality{Tile: id, Quality: tileQ, Probability: prob})
		}
	}
	// Deterministic order: probability desc, then tile ID.
	sort.SliceStable(plan, func(i, j int) bool {
		if plan[i].Probability != plan[j].Probability {
			return plan[i].Probability > plan[j].Probability
		}
		return plan[i].Tile < plan[j].Tile
	})
	// Byte budget: keep the most probable tiles.
	if pol.BudgetBytes > 0 && in.SizeAt != nil {
		var used int64
		kept := plan[:0]
		for _, tq := range plan {
			sz := in.SizeAt(tq.Tile, tq.Quality)
			if used+sz > pol.BudgetBytes {
				continue
			}
			used += sz
			kept = append(kept, tq)
		}
		plan = kept
	}
	return plan
}

// probForRing estimates the chance the view drifts into a given ring:
// a triangular falloff of the prediction radius across rings.
func probForRing(ring int, radius, tileWidthDeg float64) float64 {
	if radius <= 0 {
		return 0.05
	}
	// Distance to the ring's inner edge in degrees.
	d := float64(ring-1) * tileWidthDeg
	p := 0.6 * (1 - d/(radius+tileWidthDeg))
	if p < 0.05 {
		p = 0.05
	}
	if p > 0.95 {
		p = 0.95
	}
	return p
}

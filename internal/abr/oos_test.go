package abr

import (
	"math/rand"
	"testing"
	"time"

	"sperke/internal/hmp"
	"sperke/internal/sphere"
	"sperke/internal/tiling"
	"sperke/internal/trace"
)

// testOOSInput builds a standard OOS planning input with the given
// prediction radius.
func testOOSInput(t testing.TB, radius float64) OOSInput {
	t.Helper()
	g := tiling.GridCellular
	p := sphere.Equirectangular{}
	view := sphere.Orientation{}
	fovTiles := tiling.VisibleTiles(g, p, view, sphere.DefaultFoV)
	return OOSInput{
		Grid:       g,
		Projection: p,
		FoVTiles:   fovTiles,
		FoVQuality: 4,
		Prediction: hmp.Prediction{View: view, Radius: radius},
		FoV:        sphere.DefaultFoV,
		At:         4 * time.Second,
		SizeAt:     func(tile tiling.TileID, q int) int64 { return int64(1000 * (q + 1)) },
	}
}

func TestPlanOOSExcludesFoVTiles(t *testing.T) {
	in := testOOSInput(t, 30)
	plan := PlanOOS(in, OOSPolicy{})
	fov := make(map[tiling.TileID]bool)
	for _, id := range in.FoVTiles {
		fov[id] = true
	}
	for _, tq := range plan {
		if fov[tq.Tile] {
			t.Fatalf("OOS plan contains FoV tile %d", tq.Tile)
		}
	}
	if len(plan) == 0 {
		t.Fatal("no OOS tiles planned at radius 30")
	}
}

func TestPlanOOSQualityFallsWithDistance(t *testing.T) {
	in := testOOSInput(t, 100)
	plan := PlanOOS(in, OOSPolicy{MaxRing: 3})
	dist := tiling.Distances(in.Grid, in.FoVTiles)
	for _, tq := range plan {
		wantQ := in.FoVQuality - dist[tq.Tile]
		if wantQ < 0 {
			wantQ = 0
		}
		if tq.Quality != wantQ {
			t.Fatalf("tile %d (ring %d) planned at q%d, want q%d", tq.Tile, dist[tq.Tile], tq.Quality, wantQ)
		}
		if tq.Quality >= in.FoVQuality {
			t.Fatalf("OOS tile %d at FoV quality", tq.Tile)
		}
	}
}

func TestPlanOOSRingsGrowWithUncertainty(t *testing.T) {
	narrow := PlanOOS(testOOSInput(t, 5), OOSPolicy{MaxRing: 3})
	wide := PlanOOS(testOOSInput(t, 120), OOSPolicy{MaxRing: 3})
	if len(wide) <= len(narrow) {
		t.Fatalf("uncertain prediction planned %d tiles, certain planned %d", len(wide), len(narrow))
	}
}

func TestPlanOOSMaxRingCapsWorstCase(t *testing.T) {
	// Completely random head movement (radius 180) must not exceed the
	// ring cap.
	in := testOOSInput(t, 180)
	plan := PlanOOS(in, OOSPolicy{MaxRing: 1})
	dist := tiling.Distances(in.Grid, in.FoVTiles)
	for _, tq := range plan {
		if dist[tq.Tile] > 1 {
			t.Fatalf("tile %d beyond ring cap", tq.Tile)
		}
	}
}

func TestPlanOOSBudgetTruncates(t *testing.T) {
	in := testOOSInput(t, 120)
	full := PlanOOS(in, OOSPolicy{MaxRing: 3})
	var fullBytes int64
	for _, tq := range full {
		fullBytes += in.SizeAt(tq.Tile, tq.Quality)
	}
	budget := fullBytes / 3
	capped := PlanOOS(in, OOSPolicy{MaxRing: 3, BudgetBytes: budget})
	var cappedBytes int64
	for _, tq := range capped {
		cappedBytes += in.SizeAt(tq.Tile, tq.Quality)
	}
	if cappedBytes > budget {
		t.Fatalf("capped plan %d bytes exceeds budget %d", cappedBytes, budget)
	}
	if len(capped) == 0 || len(capped) >= len(full) {
		t.Fatalf("budget did not truncate: %d vs %d tiles", len(capped), len(full))
	}
	// The kept tiles are the most probable ones.
	minKept := 1.0
	for _, tq := range capped {
		if tq.Probability < minKept {
			minKept = tq.Probability
		}
	}
	for _, tq := range full[len(capped)+2:] {
		if tq.Probability > minKept+1e-9 {
			break // budget skips by size too; only sanity-check ordering
		}
	}
}

func TestPlanOOSProbabilitiesDescend(t *testing.T) {
	plan := PlanOOS(testOOSInput(t, 90), OOSPolicy{MaxRing: 3})
	for i := 1; i < len(plan); i++ {
		if plan[i].Probability > plan[i-1].Probability+1e-9 {
			t.Fatal("plan not sorted by probability")
		}
	}
}

func TestPlanOOSHeatmapPrunesAndPromotes(t *testing.T) {
	// Build a heatmap where everyone looks forward (yaw 0).
	g := tiling.GridCellular
	p := sphere.Equirectangular{}
	var sessions []*trace.HeadTrace
	for i := 0; i < 8; i++ {
		h := &trace.HeadTrace{}
		for ts := time.Duration(0); ts <= 10*time.Second; ts += 100 * time.Millisecond {
			h.Samples = append(h.Samples, trace.Sample{At: ts, View: sphere.Orientation{Yaw: float64(i-4) * 2}})
		}
		sessions = append(sessions, h)
	}
	heat := hmp.BuildHeatmap(g, p, sphere.DefaultFoV, 2*time.Second, 10*time.Second, sessions)

	in := testOOSInput(t, 120)
	in.Heatmap = heat
	pruned := PlanOOS(in, OOSPolicy{MaxRing: 3, MinCrowdProb: 0.2})
	unpruned := PlanOOS(testOOSInput(t, 120), OOSPolicy{MaxRing: 3})
	if len(pruned) >= len(unpruned) {
		t.Fatalf("heatmap pruning kept %d tiles, plain plan %d", len(pruned), len(unpruned))
	}
	// Behind-the-viewer tiles (crowd never looks there) must be pruned
	// beyond ring 1.
	dist := tiling.Distances(g, in.FoVTiles)
	for _, tq := range pruned {
		if dist[tq.Tile] > 1 && heat.Probability(in.At, tq.Tile) < 0.2 {
			t.Fatalf("unpopular distant tile %d not pruned", tq.Tile)
		}
	}
}

func TestPlanOOSSpeedBoundPrunes(t *testing.T) {
	in := testOOSInput(t, 120)
	in.SpeedBound = 10 // very slow user
	in.TimeToPlay = 500 * time.Millisecond
	slow := PlanOOS(in, OOSPolicy{MaxRing: 3})
	in2 := testOOSInput(t, 120)
	in2.SpeedBound = 400
	in2.TimeToPlay = 500 * time.Millisecond
	fast := PlanOOS(in2, OOSPolicy{MaxRing: 3})
	if len(slow) >= len(fast) {
		t.Fatalf("slow user planned %d tiles, fast user %d", len(slow), len(fast))
	}
}

func TestPlanOOSNegativeQualityRejected(t *testing.T) {
	in := testOOSInput(t, 30)
	in.FoVQuality = -1
	if plan := PlanOOS(in, OOSPolicy{}); plan != nil {
		t.Fatal("negative FoV quality produced a plan")
	}
}

func TestPlanOOSLowFoVQualityClampsAtZero(t *testing.T) {
	in := testOOSInput(t, 120)
	in.FoVQuality = 1
	for _, tq := range PlanOOS(in, OOSPolicy{MaxRing: 3}) {
		if tq.Quality < 0 {
			t.Fatalf("negative OOS quality %d", tq.Quality)
		}
	}
}

func TestProbForRingMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		radius := rng.Float64() * 180
		prev := 2.0
		for ring := 1; ring <= 4; ring++ {
			p := probForRing(ring, radius, 60)
			if p > prev {
				t.Fatalf("probability grew with ring distance (radius %.0f)", radius)
			}
			if p < 0 || p > 1 {
				t.Fatalf("probability %v out of range", p)
			}
			prev = p
		}
	}
}

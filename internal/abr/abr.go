// Package abr implements video rate adaptation for tiled 360° streaming
// (§3.1.2). The design follows the paper's three-part decomposition:
//
//  1. With perfect HMP, FoV-guided VRA reduces to regular VRA over
//     "super chunks" — the minimal tile sets covering each predicted
//     FoV, all fetched at one quality. Classic algorithms plug in here:
//     throughput-based [29], buffer-based [28], and a control-theoretic
//     lookahead [44].
//  2. Imperfect HMP is absorbed by adding out-of-sight (OOS) chunks
//     around the FoV, their number and quality driven by prediction
//     uncertainty, bandwidth budget, and crowd statistics (§3.2).
//  3. Incremental chunk upgrades (§3.1.1): when HMP revises its
//     forecast, already-fetched chunks can be raised to higher quality —
//     by fetching only enhancement layers under SVC, or by a full
//     re-fetch under AVC.
package abr

import (
	"fmt"
	"time"

	"sperke/internal/media"
)

// Context is the input snapshot a VRA algorithm decides from.
type Context struct {
	// EstimatedBandwidth is the smoothed throughput estimate, bits/s.
	EstimatedBandwidth float64
	// Buffer is the current playable buffer ahead of the playhead.
	Buffer time.Duration
	// MaxBuffer is the buffer ceiling the player can fill. For
	// FoV-guided streaming this is effectively the HMP prediction
	// window: fetching beyond it means fetching blind (§3.1.2's argument
	// against buffer-based VRA here).
	MaxBuffer time.Duration
	// ChunkDuration is the temporal chunk length.
	ChunkDuration time.Duration
	// Ladder is the video's quality ladder.
	Ladder []media.QualityLevel
	// SizeAt returns the fetch size in bytes of the next super chunk at
	// quality q.
	SizeAt func(q int) int64
	// LastQuality is the previously chosen quality (-1 before the first
	// choice).
	LastQuality int
}

// qualities returns the ladder length, guarding empty ladders.
func (c *Context) qualities() int { return len(c.Ladder) }

// Algorithm picks the quality level for the next super chunk.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// ChooseQuality returns a ladder index in [0, len(Ladder)).
	ChooseQuality(ctx Context) int
}

// Throughput is rate-based VRA in the FESTIVE tradition [29]: pick the
// highest quality whose super-chunk rate fits inside a safety fraction
// of estimated bandwidth, moving at most one level per decision to
// avoid oscillation.
type Throughput struct {
	// Safety is the usable fraction of the estimate; 0 defaults to 0.85.
	Safety float64
}

// Name implements Algorithm.
func (t *Throughput) Name() string { return "throughput" }

// ChooseQuality implements Algorithm.
func (t *Throughput) ChooseQuality(ctx Context) int {
	if ctx.qualities() == 0 {
		return 0
	}
	safety := t.Safety
	if safety <= 0 || safety > 1 {
		safety = 0.85
	}
	budget := ctx.EstimatedBandwidth * safety
	best := 0
	for q := 0; q < ctx.qualities(); q++ {
		rate := float64(ctx.SizeAt(q)) * 8 / ctx.ChunkDuration.Seconds()
		if rate <= budget {
			best = q
		}
	}
	// Gradual switching: at most one level up per decision; drops are
	// immediate (stalls hurt more than switches).
	if ctx.LastQuality >= 0 && best > ctx.LastQuality+1 {
		best = ctx.LastQuality + 1
	}
	return best
}

// Buffer is buffer-based VRA in the BBA tradition [28]: quality is a
// linear function of buffer occupancy between a reservoir and a
// cushion. With the short buffers FoV-guided streaming permits (the
// MaxBuffer ≈ HMP window constraint), the mapping compresses and the
// algorithm hugs low qualities — exactly the §3.1.2 concern.
type Buffer struct {
	// ReservoirFrac and CushionFrac position the linear ramp within
	// [0, MaxBuffer]; zero values default to 0.2 and 0.9.
	ReservoirFrac, CushionFrac float64
}

// Name implements Algorithm.
func (b *Buffer) Name() string { return "buffer" }

// ChooseQuality implements Algorithm.
func (b *Buffer) ChooseQuality(ctx Context) int {
	n := ctx.qualities()
	if n == 0 {
		return 0
	}
	res := b.ReservoirFrac
	if res <= 0 {
		res = 0.2
	}
	cus := b.CushionFrac
	if cus <= res {
		cus = 0.9
	}
	maxBuf := ctx.MaxBuffer
	if maxBuf <= 0 {
		maxBuf = 30 * time.Second
	}
	occ := float64(ctx.Buffer) / float64(maxBuf)
	switch {
	case occ <= res:
		return 0
	case occ >= cus:
		return n - 1
	default:
		frac := (occ - res) / (cus - res)
		q := int(frac * float64(n-1))
		if q >= n {
			q = n - 1
		}
		return q
	}
}

// MPC is a control-theoretic lookahead in the spirit of [44]: simulate
// the next Horizon chunks for each candidate quality path (restricted to
// bounded level changes) and pick the first step of the path maximizing
// a QoE objective of quality reward, switch penalty and predicted stall
// penalty.
type MPC struct {
	// Horizon is the number of future chunks considered; 0 defaults to 3.
	Horizon int
	// SwitchPenalty and StallPenalty weight the objective; zero values
	// default to 1.0 and 8.0.
	SwitchPenalty, StallPenalty float64
}

// Name implements Algorithm.
func (m *MPC) Name() string { return "mpc" }

// ChooseQuality implements Algorithm.
func (m *MPC) ChooseQuality(ctx Context) int {
	n := ctx.qualities()
	if n == 0 {
		return 0
	}
	horizon := m.Horizon
	if horizon <= 0 {
		horizon = 3
	}
	swPen := m.SwitchPenalty
	if swPen <= 0 {
		swPen = 1.0
	}
	stPen := m.StallPenalty
	if stPen <= 0 {
		stPen = 8.0
	}
	bw := ctx.EstimatedBandwidth
	if bw <= 0 {
		return 0
	}
	// Exhaustive search over quality paths with bounded level changes
	// (±1 per step after the first), as [44]'s fastMPC table-lookup
	// approximates. The first step ranges over all qualities; the
	// branching factor of 3 keeps the search at 3^(horizon-1) per
	// starting level.
	bestQ, bestScore := 0, -1e18
	var walk func(q, prev, step int, buffer, score float64)
	walk = func(q, prev, step int, buffer, score float64) {
		fetchSec := float64(ctx.SizeAt(q)) * 8 / bw
		buffer -= fetchSec
		if buffer < 0 {
			score -= stPen * -buffer // stall seconds
			buffer = 0
		}
		buffer += ctx.ChunkDuration.Seconds()
		if max := ctx.MaxBuffer.Seconds(); max > 0 && buffer > max {
			buffer = max
		}
		score += float64(q+1) / float64(n)
		if prev >= 0 && q != prev {
			score -= swPen * float64(abs(q-prev)) / float64(n)
		}
		if step+1 >= horizon {
			if score > bestScore {
				bestScore = score
				// bestQ is set by the caller of the first step.
			}
			return
		}
		for _, next := range []int{q - 1, q, q + 1} {
			if next < 0 || next >= n {
				continue
			}
			walk(next, q, step+1, buffer, score)
		}
	}
	for q := 0; q < n; q++ {
		before := bestScore
		walk(q, ctx.LastQuality, 0, ctx.Buffer.Seconds(), 0)
		if bestScore > before {
			bestQ = q
		}
	}
	return bestQ
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ByName returns a fresh algorithm by its Name, for CLI flags.
func ByName(name string) (Algorithm, error) {
	switch name {
	case "throughput":
		return &Throughput{}, nil
	case "buffer":
		return &Buffer{}, nil
	case "mpc":
		return &MPC{}, nil
	default:
		return nil, fmt.Errorf("abr: unknown algorithm %q", name)
	}
}

// Fixed always returns the same quality level (clamped to the ladder) —
// the controlled setting bandwidth-saving comparisons use: hold quality
// constant, compare bytes (§2's 45%/60–80% savings are measured this
// way).
type Fixed struct {
	// Q is the ladder index to hold.
	Q int
}

// Name implements Algorithm.
func (f *Fixed) Name() string { return "fixed" }

// ChooseQuality implements Algorithm.
func (f *Fixed) ChooseQuality(ctx Context) int {
	n := ctx.qualities()
	if n == 0 {
		return 0
	}
	q := f.Q
	if q < 0 {
		q = 0
	}
	if q >= n {
		q = n - 1
	}
	return q
}

package abr

import (
	"time"

	"sperke/internal/media"
)

// UpgradeRequest describes an already-fetched chunk that HMP now
// believes will be displayed at a quality below the FoV target
// (§3.1.1's out-of-sight chunk that drifted into sight).
type UpgradeRequest struct {
	// Encoding determines the upgrade cost model: SVC fetches only the
	// delta layers; AVC re-fetches the whole chunk.
	Encoding media.Encoding
	// BytesNeeded is the delta (SVC) or full re-fetch (AVC) size.
	BytesNeeded int64
	// TimeToDeadline is how long until the chunk must be decoded.
	TimeToDeadline time.Duration
	// DisplayProbability is HMP's current belief the chunk will actually
	// be in view at its play time.
	DisplayProbability float64
	// QualityGain is the number of ladder levels the upgrade adds.
	QualityGain int
}

// UpgradePolicy tunes the two §3.1.2 decisions: whether to upgrade at
// all, and when.
type UpgradePolicy struct {
	// MinProbability is the display-probability floor below which
	// upgrading is judged a waste; 0 defaults to 0.5.
	MinProbability float64
	// SafetyFactor inflates the estimated fetch time when checking the
	// deadline; 0 defaults to 1.5.
	SafetyFactor float64
	// EarlyWindow: upgrading earlier than this multiple of the fetch
	// time before the deadline is deferred — the HMP may still change
	// (the "upgrading too early wastes bandwidth" arm); 0 defaults to 4.
	EarlyWindow float64
}

func (p UpgradePolicy) minProb() float64 {
	if p.MinProbability <= 0 {
		return 0.5
	}
	return p.MinProbability
}

func (p UpgradePolicy) safety() float64 {
	if p.SafetyFactor <= 0 {
		return 1.5
	}
	return p.SafetyFactor
}

func (p UpgradePolicy) early() float64 {
	if p.EarlyWindow <= 0 {
		return 4
	}
	return p.EarlyWindow
}

// UpgradeDecision is the scheduler's verdict on one upgrade request.
type UpgradeDecision int

// Possible verdicts.
const (
	// UpgradeNow: fetch the delta immediately.
	UpgradeNow UpgradeDecision = iota
	// UpgradeDefer: worth upgrading but too early — re-ask closer to the
	// deadline.
	UpgradeDefer
	// UpgradeSkip: not worth the bandwidth (low display probability or
	// deadline unreachable).
	UpgradeSkip
)

func (d UpgradeDecision) String() string {
	switch d {
	case UpgradeNow:
		return "now"
	case UpgradeDefer:
		return "defer"
	default:
		return "skip"
	}
}

// DecideUpgrade implements the §3.1.2 part-three logic. bandwidth is
// the current estimate in bits/s.
func DecideUpgrade(req UpgradeRequest, bandwidth float64, pol UpgradePolicy) UpgradeDecision {
	if req.QualityGain <= 0 || req.BytesNeeded <= 0 {
		return UpgradeSkip
	}
	if req.DisplayProbability < pol.minProb() {
		return UpgradeSkip
	}
	if bandwidth <= 0 {
		return UpgradeSkip
	}
	fetch := time.Duration(float64(req.BytesNeeded) * 8 / bandwidth * float64(time.Second))
	needed := time.Duration(float64(fetch) * pol.safety())
	if needed > req.TimeToDeadline {
		// Upgrading too late: the delta cannot arrive before playback.
		return UpgradeSkip
	}
	// Upgrading too early wastes bandwidth if HMP changes again — defer
	// until the deadline approaches, unless the prediction is already
	// near-certain.
	deferWindow := time.Duration(float64(fetch) * pol.early())
	if req.TimeToDeadline > deferWindow && req.DisplayProbability < 0.9 {
		return UpgradeDefer
	}
	return UpgradeNow
}

// HybridChoice implements the §3.1.2 closing idea: the server keeps
// both SVC and AVC copies of each chunk, and the client fetches the
// encoding with the lower expected cost — AVC dodges the SVC overhead
// when an upgrade is unlikely; SVC wins once the upgrade probability
// makes the cheap delta pay for the overhead.
//
//	E[AVC] = fetchAVC + p·upgradeAVC   (full re-fetch on upgrade)
//	E[SVC] = fetchSVC + p·upgradeSVC   (delta layers on upgrade)
func HybridChoice(upgradeProbability float64, fetchAVC, fetchSVC, upgradeAVC, upgradeSVC int64) media.Encoding {
	p := upgradeProbability
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	eAVC := float64(fetchAVC) + p*float64(upgradeAVC)
	eSVC := float64(fetchSVC) + p*float64(upgradeSVC)
	if eSVC < eAVC {
		return media.EncodingSVC
	}
	return media.EncodingAVC
}

package abr

import (
	"testing"
	"time"

	"sperke/internal/media"
	"sperke/internal/tiling"
)

// testCtx builds a Context over the default ladder where a super chunk
// at quality q costs exactly the ladder rate × chunk duration (8 tiles'
// worth ≈ whole-FoV share).
func testCtx(bw float64, buffer, maxBuffer time.Duration, lastQ int) Context {
	ladder := media.DefaultLadder
	chunkDur := 2 * time.Second
	return Context{
		EstimatedBandwidth: bw,
		Buffer:             buffer,
		MaxBuffer:          maxBuffer,
		ChunkDuration:      chunkDur,
		Ladder:             ladder,
		LastQuality:        lastQ,
		SizeAt: func(q int) int64 {
			// A super chunk covers ~40% of the panorama.
			return int64(float64(ladder[q].Bitrate) * chunkDur.Seconds() / 8 * 0.4)
		},
	}
}

func TestThroughputPicksFittingQuality(t *testing.T) {
	alg := &Throughput{}
	// 3 Mbps estimate: 0.4×ladder-rate must fit in 0.85×3Mbps=2.55Mbps →
	// highest ladder rate ≤ 6.375 Mbps → 1080p (6.4 is just over; 720p).
	q := alg.ChooseQuality(testCtx(3e6, 4*time.Second, 10*time.Second, -1))
	rate := float64(media.DefaultLadder[q].Bitrate) * 0.4
	if rate > 0.85*3e6 {
		t.Fatalf("chosen q%d rate %.0f exceeds budget", q, rate)
	}
	// And the next level up must not fit.
	if q+1 < len(media.DefaultLadder) {
		next := float64(media.DefaultLadder[q+1].Bitrate) * 0.4
		if next <= 0.85*3e6 {
			t.Fatalf("q%d chosen but q%d also fits", q, q+1)
		}
	}
}

func TestThroughputZeroBandwidthFloors(t *testing.T) {
	alg := &Throughput{}
	if q := alg.ChooseQuality(testCtx(0, 0, 10*time.Second, -1)); q != 0 {
		t.Fatalf("q = %d at zero bandwidth, want 0", q)
	}
}

func TestThroughputGradualUpswitch(t *testing.T) {
	alg := &Throughput{}
	// Huge bandwidth but last quality 0: may only step to 1.
	if q := alg.ChooseQuality(testCtx(1e9, 4*time.Second, 10*time.Second, 0)); q != 1 {
		t.Fatalf("q = %d, want gradual step to 1", q)
	}
	// Drops are immediate.
	if q := alg.ChooseQuality(testCtx(100e3, 4*time.Second, 10*time.Second, 5)); q != 0 {
		t.Fatalf("q = %d, want immediate drop to 0", q)
	}
}

func TestBufferMapsOccupancy(t *testing.T) {
	alg := &Buffer{}
	maxQ := len(media.DefaultLadder) - 1
	// Below reservoir → 0.
	if q := alg.ChooseQuality(testCtx(1e9, time.Second, 10*time.Second, -1)); q != 0 {
		t.Fatalf("low buffer q = %d, want 0", q)
	}
	// Above cushion → max.
	if q := alg.ChooseQuality(testCtx(1e9, 9500*time.Millisecond, 10*time.Second, -1)); q != maxQ {
		t.Fatalf("full buffer q = %d, want %d", q, maxQ)
	}
	// Middle → middle.
	q := alg.ChooseQuality(testCtx(1e9, 5500*time.Millisecond, 10*time.Second, -1))
	if q <= 0 || q >= maxQ {
		t.Fatalf("mid buffer q = %d, want interior", q)
	}
}

func TestBufferHandicappedByShortWindow(t *testing.T) {
	// The §3.1.2 argument: with MaxBuffer = HMP window (2 s) and a
	// realistic sustainable buffer around half of it, BBA picks lower
	// quality than with a 30 s buffer at the same occupancy seconds.
	alg := &Buffer{}
	short := alg.ChooseQuality(testCtx(1e9, time.Second, 2*time.Second, -1))
	long := alg.ChooseQuality(testCtx(1e9, 25*time.Second, 30*time.Second, -1))
	if short >= long {
		t.Fatalf("short-window q%d not below long-window q%d", short, long)
	}
}

func TestMPCAvoidsStalls(t *testing.T) {
	alg := &MPC{}
	// Bandwidth only supports q0-q1; a high quality would predict stalls.
	q := alg.ChooseQuality(testCtx(1e6, 2*time.Second, 10*time.Second, 3))
	rate := float64(media.DefaultLadder[q].Bitrate) * 0.4
	if rate > 2e6 {
		t.Fatalf("MPC chose q%d (%.1f Mbps) on a 1 Mbps link", q, rate/1e6)
	}
}

func TestMPCUsesBandwidthWhenSafe(t *testing.T) {
	alg := &MPC{}
	q := alg.ChooseQuality(testCtx(50e6, 8*time.Second, 10*time.Second, 4))
	if q < 3 {
		t.Fatalf("MPC chose q%d with 50 Mbps and a full buffer", q)
	}
}

func TestMPCSwitchPenaltyStabilizes(t *testing.T) {
	sticky := &MPC{SwitchPenalty: 50}
	loose := &MPC{SwitchPenalty: 0.01}
	ctx := testCtx(20e6, 6*time.Second, 10*time.Second, 2)
	qs := sticky.ChooseQuality(ctx)
	ql := loose.ChooseQuality(ctx)
	if qs != 2 {
		t.Fatalf("high switch penalty still moved: q%d", qs)
	}
	if ql <= 2 {
		t.Fatalf("low switch penalty did not exploit bandwidth: q%d", ql)
	}
}

func TestMPCZeroBandwidth(t *testing.T) {
	alg := &MPC{}
	if q := alg.ChooseQuality(testCtx(0, 5*time.Second, 10*time.Second, 2)); q != 0 {
		t.Fatalf("q = %d at zero bandwidth", q)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"throughput", "buffer", "mpc"} {
		alg, err := ByName(name)
		if err != nil || alg.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, alg, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestEmptyLadderSafe(t *testing.T) {
	ctx := Context{ChunkDuration: time.Second, SizeAt: func(int) int64 { return 0 }}
	for _, alg := range []Algorithm{&Throughput{}, &Buffer{}, &MPC{}} {
		if q := alg.ChooseQuality(ctx); q != 0 {
			t.Fatalf("%s returned %d on empty ladder", alg.Name(), q)
		}
	}
}

func TestDecideUpgradeCore(t *testing.T) {
	pol := UpgradePolicy{}
	base := UpgradeRequest{
		Encoding:           media.EncodingSVC,
		BytesNeeded:        250_000, // 2 Mbit
		TimeToDeadline:     2 * time.Second,
		DisplayProbability: 0.95,
		QualityGain:        2,
	}
	// 10 Mbps: fetch ≈ 0.2 s, safety 0.3 s < 2 s deadline, and the
	// deadline is within the 4×fetch=0.8s window? No — 2 s > 0.8 s, but
	// probability 0.95 ≥ 0.9 → upgrade now.
	if d := DecideUpgrade(base, 10e6, pol); d != UpgradeNow {
		t.Fatalf("high-probability upgrade = %v, want now", d)
	}
	// Lower probability, far deadline → defer.
	req := base
	req.DisplayProbability = 0.7
	if d := DecideUpgrade(req, 10e6, pol); d != UpgradeDefer {
		t.Fatalf("early upgrade = %v, want defer", d)
	}
	// Same but deadline near → now.
	req.TimeToDeadline = 500 * time.Millisecond
	if d := DecideUpgrade(req, 10e6, pol); d != UpgradeNow {
		t.Fatalf("near-deadline upgrade = %v, want now", d)
	}
	// Probability below floor → skip.
	req.DisplayProbability = 0.3
	if d := DecideUpgrade(req, 10e6, pol); d != UpgradeSkip {
		t.Fatalf("low-probability upgrade = %v, want skip", d)
	}
	// Deadline unreachable → skip.
	req = base
	req.TimeToDeadline = 50 * time.Millisecond
	if d := DecideUpgrade(req, 1e6, pol); d != UpgradeSkip {
		t.Fatalf("unreachable deadline = %v, want skip", d)
	}
	// No gain → skip.
	req = base
	req.QualityGain = 0
	if d := DecideUpgrade(req, 10e6, pol); d != UpgradeSkip {
		t.Fatalf("zero-gain upgrade = %v, want skip", d)
	}
	// Zero bandwidth → skip.
	if d := DecideUpgrade(base, 0, pol); d != UpgradeSkip {
		t.Fatalf("zero-bandwidth upgrade = %v, want skip", d)
	}
}

func TestUpgradeDecisionString(t *testing.T) {
	if UpgradeNow.String() != "now" || UpgradeDefer.String() != "defer" || UpgradeSkip.String() != "skip" {
		t.Fatal("bad decision strings")
	}
}

func TestHybridChoice(t *testing.T) {
	// Costs: SVC fetch carries +10% overhead; SVC upgrade is the cheap
	// delta, AVC upgrade a full re-fetch.
	const fetchAVC, fetchSVC, upAVC, upSVC = 100, 110, 400, 360
	// Break-even: p* = (110-100)/(400-360) = 0.25.
	if enc := HybridChoice(0.1, fetchAVC, fetchSVC, upAVC, upSVC); enc != media.EncodingAVC {
		t.Fatalf("p=0.1 → %v, want AVC", enc)
	}
	if enc := HybridChoice(0.3, fetchAVC, fetchSVC, upAVC, upSVC); enc != media.EncodingSVC {
		t.Fatalf("p=0.3 → %v, want SVC", enc)
	}
	// Exactly at break-even, AVC (no strict win for SVC).
	if enc := HybridChoice(0.25, fetchAVC, fetchSVC, upAVC, upSVC); enc != media.EncodingAVC {
		t.Fatalf("p=0.25 → %v, want AVC at tie", enc)
	}
	// Out-of-range probabilities clamp.
	if enc := HybridChoice(-1, fetchAVC, fetchSVC, upAVC, upSVC); enc != media.EncodingAVC {
		t.Fatalf("p<0 → %v, want AVC", enc)
	}
	if enc := HybridChoice(2, fetchAVC, fetchSVC, upAVC, upSVC); enc != media.EncodingSVC {
		t.Fatalf("p>1 → %v, want SVC", enc)
	}
}

func TestTileQualityOrderingDeterministic(t *testing.T) {
	// Two plans built from the same input must be identical.
	in := testOOSInput(t, 30)
	a := PlanOOS(in, OOSPolicy{})
	b := PlanOOS(in, OOSPolicy{})
	if len(a) != len(b) {
		t.Fatal("plans differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("plans differ")
		}
	}
	_ = tiling.TileID(0)
}

func TestFixedClamps(t *testing.T) {
	ctx := testCtx(1e6, time.Second, 10*time.Second, -1)
	if q := (&Fixed{Q: 3}).ChooseQuality(ctx); q != 3 {
		t.Fatalf("Fixed(3) = %d", q)
	}
	if q := (&Fixed{Q: 99}).ChooseQuality(ctx); q != len(media.DefaultLadder)-1 {
		t.Fatalf("Fixed(99) = %d, want top", q)
	}
	if q := (&Fixed{Q: -2}).ChooseQuality(ctx); q != 0 {
		t.Fatalf("Fixed(-2) = %d, want 0", q)
	}
	if q := (&Fixed{Q: 1}).ChooseQuality(Context{}); q != 0 {
		t.Fatalf("Fixed on empty ladder = %d", q)
	}
}

package abr

import (
	"time"

	"sperke/internal/hmp"
	"sperke/internal/media"
	"sperke/internal/sphere"
	"sperke/internal/tiling"
)

// SuperChunk is §3.1.2 part one's unit: "the minimum number of chunks
// that fully cover the corresponding FoV", all fetched at one quality
// so the view looks uniform. Regular VRA algorithms operate on the
// sequence of super chunks exactly as they would on a conventional
// video's chunks.
type SuperChunk struct {
	// Interval is the temporal chunk index; Start its media time.
	Interval int
	Start    time.Duration
	// Tiles is the covering tile set for the predicted FoV.
	Tiles []tiling.TileID
	// Prediction is the HMP output the cover was computed from; its
	// radius drives the surrounding OOS plan (part two).
	Prediction hmp.Prediction
}

// BuildSuperChunk covers the predicted FoV for one interval.
func BuildSuperChunk(g tiling.Grid, p sphere.Projection, fov sphere.FoV,
	pred hmp.Prediction, interval int, chunkDur time.Duration) SuperChunk {
	return SuperChunk{
		Interval:   interval,
		Start:      time.Duration(interval) * chunkDur,
		Tiles:      tiling.VisibleTiles(g, p, pred.View, fov),
		Prediction: pred,
	}
}

// SizeAt returns the fetch bytes of the super chunk at quality q for a
// video — the SizeAt function VRA contexts consume.
func (sc SuperChunk) SizeAt(v *media.Video, q int) int64 {
	var sum int64
	for _, id := range sc.Tiles {
		sum += v.FetchBytes(q, id, sc.Start)
	}
	return sum
}

// Rate returns the super chunk's rate in bits/s at quality q.
func (sc SuperChunk) Rate(v *media.Video, q int) float64 {
	if v.ChunkDuration <= 0 {
		return 0
	}
	return float64(sc.SizeAt(v, q)) * 8 / v.ChunkDuration.Seconds()
}

// BuildSequence covers a whole prediction window: one super chunk per
// interval in [from, to), each from the predictor's forecast at that
// interval's midpoint. This is the "sequence of super chunks" §3.1.2
// reduces FoV-guided VRA to under perfect HMP.
func BuildSequence(g tiling.Grid, p sphere.Projection, fov sphere.FoV,
	predict func(at time.Duration) hmp.Prediction, chunkDur time.Duration, from, to int) []SuperChunk {
	if to <= from {
		return nil
	}
	out := make([]SuperChunk, 0, to-from)
	for i := from; i < to; i++ {
		mid := time.Duration(i)*chunkDur + chunkDur/2
		out = append(out, BuildSuperChunk(g, p, fov, predict(mid), i, chunkDur))
	}
	return out
}

package abr

import (
	"testing"
	"time"
)

func BenchmarkPlanOOS(b *testing.B) {
	in := testOOSInput(b, 90)
	pol := OOSPolicy{MaxRing: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PlanOOS(in, pol)
	}
}

func BenchmarkMPCChoose(b *testing.B) {
	alg := &MPC{}
	ctx := testCtx(12e6, 4*time.Second, 10*time.Second, 3)
	for i := 0; i < b.N; i++ {
		alg.ChooseQuality(ctx)
	}
}

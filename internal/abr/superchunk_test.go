package abr

import (
	"testing"
	"time"

	"sperke/internal/hmp"
	"sperke/internal/media"
	"sperke/internal/sphere"
	"sperke/internal/tiling"
)

func scVideo() *media.Video {
	return &media.Video{
		ID:            "sc-test",
		Duration:      20 * time.Second,
		ChunkDuration: 2 * time.Second,
		Grid:          tiling.GridCellular,
		Ladder:        media.DefaultLadder,
		Encoding:      media.EncodingAVC,
	}
}

func TestBuildSuperChunkCoversFoV(t *testing.T) {
	g := tiling.GridCellular
	p := sphere.Equirectangular{}
	pred := hmp.Prediction{View: sphere.Orientation{Yaw: 45}, Radius: 10}
	sc := BuildSuperChunk(g, p, sphere.DefaultFoV, pred, 3, 2*time.Second)
	if sc.Interval != 3 || sc.Start != 6*time.Second {
		t.Fatalf("interval/start %d/%v", sc.Interval, sc.Start)
	}
	want := tiling.VisibleTiles(g, p, pred.View, sphere.DefaultFoV)
	if len(sc.Tiles) != len(want) {
		t.Fatalf("tiles %d, want %d", len(sc.Tiles), len(want))
	}
	if sc.Prediction.Radius != 10 {
		t.Fatal("prediction not carried")
	}
}

func TestSuperChunkSizeMatchesTileSum(t *testing.T) {
	v := scVideo()
	sc := BuildSuperChunk(v.Grid, sphere.Equirectangular{}, sphere.DefaultFoV,
		hmp.Prediction{}, 2, v.ChunkDuration)
	var sum int64
	for _, id := range sc.Tiles {
		sum += v.FetchBytes(3, id, sc.Start)
	}
	if got := sc.SizeAt(v, 3); got != sum {
		t.Fatalf("SizeAt = %d, want %d", got, sum)
	}
	// Rate is size over the chunk duration.
	wantRate := float64(sum) * 8 / 2
	if got := sc.Rate(v, 3); got != wantRate {
		t.Fatalf("Rate = %v, want %v", got, wantRate)
	}
}

func TestSuperChunkSmallerThanPanorama(t *testing.T) {
	// The point of the construction: a super chunk is the FoV cover, not
	// the sphere.
	v := scVideo()
	sc := BuildSuperChunk(v.Grid, sphere.Equirectangular{}, sphere.DefaultFoV,
		hmp.Prediction{}, 0, v.ChunkDuration)
	if sc.SizeAt(v, 4) >= v.PanoramaBytes(4, 0) {
		t.Fatal("super chunk not smaller than the panorama")
	}
}

func TestBuildSequence(t *testing.T) {
	v := scVideo()
	// A predictor panning rightward: later intervals cover different
	// tiles.
	predict := func(at time.Duration) hmp.Prediction {
		return hmp.Prediction{View: sphere.Orientation{Yaw: 20 * at.Seconds()}, Radius: 15}
	}
	seq := BuildSequence(v.Grid, sphere.Equirectangular{}, sphere.DefaultFoV,
		predict, v.ChunkDuration, 0, 5)
	if len(seq) != 5 {
		t.Fatalf("sequence length %d", len(seq))
	}
	for i, sc := range seq {
		if sc.Interval != i {
			t.Fatalf("interval %d at position %d", sc.Interval, i)
		}
		if len(sc.Tiles) == 0 {
			t.Fatalf("empty cover at %d", i)
		}
	}
	// The pan must move the cover: first and last intervals differ.
	same := true
	first := map[tiling.TileID]bool{}
	for _, id := range seq[0].Tiles {
		first[id] = true
	}
	for _, id := range seq[4].Tiles {
		if !first[id] {
			same = false
		}
	}
	if same && len(seq[0].Tiles) == len(seq[4].Tiles) {
		t.Fatal("160° of pan did not change the cover")
	}
	if BuildSequence(v.Grid, sphere.Equirectangular{}, sphere.DefaultFoV, predict, v.ChunkDuration, 3, 3) != nil {
		t.Fatal("empty range not nil")
	}
}

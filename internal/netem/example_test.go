package netem_test

import (
	"fmt"
	"time"

	"sperke/internal/netem"
	"sperke/internal/sim"
)

// ExampleParseTrace builds a link schedule the way CLI flags do — the
// role `tc` scripts play in the paper's testbed (§3.4.1).
func ExampleParseTrace() {
	tr, err := netem.ParseTrace("0:8M,10s:1.5M")
	if err != nil {
		panic(err)
	}
	fmt.Printf("rate at 5s: %.1f Mbps\n", tr.RateAt(5*time.Second)/1e6)
	fmt.Printf("rate at 15s: %.1f Mbps\n", tr.RateAt(15*time.Second)/1e6)
	// Output:
	// rate at 5s: 8.0 Mbps
	// rate at 15s: 1.5 Mbps
}

// ExamplePath transfers a chunk over an emulated link and reads the
// throughput sample rate adaptation would consume.
func ExamplePath() {
	clock := sim.NewClock(1)
	path := netem.NewPath(clock, "wifi", netem.Constant(8e6), 10*time.Millisecond, 0)
	path.Transfer(1e6, netem.Reliable, func(d netem.Delivery) {
		fmt.Printf("1 MB arrived at %v, throughput %.1f Mbps\n",
			d.Done, d.Throughput()/1e6)
	})
	clock.Run()
	// Output:
	// 1 MB arrived at 1.01s, throughput 7.9 Mbps
}

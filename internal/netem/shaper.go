package netem

import (
	"net"
	"sync"
	"time"
)

// RateLimitedConn wraps a real net.Conn and throttles writes to a target
// rate with a token bucket running on wall-clock time. Loopback
// integration tests use it the way the paper's testbed uses `tc`
// (§3.4.1): to emulate a constrained uplink or downlink underneath an
// otherwise-real protocol stack.
type RateLimitedConn struct {
	net.Conn

	mu      sync.Mutex
	bps     float64
	burst   int
	tokens  float64
	last    time.Time
	nowFunc func() time.Time
	sleep   func(time.Duration)
}

// NewRateLimitedConn shapes conn's write path to bps bits/s with the
// given burst allowance in bytes (<=0 means 32 KiB). bps <= 0 means
// unlimited.
func NewRateLimitedConn(conn net.Conn, bps float64, burst int) *RateLimitedConn {
	if burst <= 0 {
		burst = 32 << 10
	}
	return &RateLimitedConn{
		Conn:    conn,
		bps:     bps,
		burst:   burst,
		tokens:  float64(burst),
		last:    time.Now(),
		nowFunc: time.Now,
		sleep:   time.Sleep,
	}
}

// Write implements net.Conn, blocking as needed to respect the rate.
func (c *RateLimitedConn) Write(p []byte) (int, error) {
	if c.bps <= 0 {
		return c.Conn.Write(p)
	}
	written := 0
	for written < len(p) {
		n := len(p) - written
		if n > c.burst {
			n = c.burst
		}
		c.waitFor(n)
		m, err := c.Conn.Write(p[written : written+n])
		written += m
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// waitFor blocks until n bytes of budget are available, then spends it.
func (c *RateLimitedConn) waitFor(n int) {
	for {
		c.mu.Lock()
		now := c.nowFunc()
		elapsed := now.Sub(c.last).Seconds()
		c.last = now
		c.tokens += elapsed * c.bps / 8
		if c.tokens > float64(c.burst) {
			c.tokens = float64(c.burst)
		}
		if c.tokens >= float64(n) {
			c.tokens -= float64(n)
			c.mu.Unlock()
			return
		}
		deficit := float64(n) - c.tokens
		wait := time.Duration(deficit / (c.bps / 8) * float64(time.Second))
		c.mu.Unlock()
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		c.sleep(wait)
	}
}

// SetRate changes the shaping rate at runtime (bits/s; <=0 unlimited).
func (c *RateLimitedConn) SetRate(bps float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bps = bps
}

package netem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sperke/internal/sim"
)

func TestConstantTraceRate(t *testing.T) {
	tr := Constant(5e6)
	if tr.RateAt(0) != 5e6 || tr.RateAt(time.Hour) != 5e6 {
		t.Fatal("constant trace not constant")
	}
}

func TestStepsValidation(t *testing.T) {
	if _, err := Steps(); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := Steps(Step{Start: time.Second, BPS: 1e6}); err == nil {
		t.Fatal("trace not starting at 0 accepted")
	}
	if _, err := Steps(Step{0, 1e6}, Step{0, 2e6}); err == nil {
		t.Fatal("non-increasing starts accepted")
	}
	if _, err := Steps(Step{0, -1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestTraceRateAtSteps(t *testing.T) {
	tr := MustSteps(Step{0, 1e6}, Step{10 * time.Second, 2e6}, Step{20 * time.Second, 5e5})
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 1e6}, {5 * time.Second, 1e6}, {10 * time.Second, 2e6},
		{15 * time.Second, 2e6}, {25 * time.Second, 5e5}, {-time.Second, 1e6},
	}
	for _, c := range cases {
		if got := tr.RateAt(c.at); got != c.want {
			t.Errorf("RateAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestFinishTimeConstant(t *testing.T) {
	tr := Constant(8e6) // 1 MB/s
	got := tr.FinishTime(0, 2e6)
	if got != 2*time.Second {
		t.Fatalf("FinishTime = %v, want 2s", got)
	}
	// Starting later shifts linearly.
	got = tr.FinishTime(3*time.Second, 1e6)
	if got != 4*time.Second {
		t.Fatalf("FinishTime from 3s = %v, want 4s", got)
	}
}

func TestFinishTimeAcrossSteps(t *testing.T) {
	// 1 MB/s for 1s (1 MB capacity), then 2 MB/s.
	tr := MustSteps(Step{0, 8e6}, Step{time.Second, 16e6})
	// 3 MB: 1 MB in the first second, 2 MB at 2 MB/s = 1 more second.
	got := tr.FinishTime(0, 3e6)
	if got != 2*time.Second {
		t.Fatalf("FinishTime = %v, want 2s", got)
	}
}

func TestFinishTimeZeroRateSegment(t *testing.T) {
	// Outage from 1s to 2s.
	tr := MustSteps(Step{0, 8e6}, Step{time.Second, 0}, Step{2 * time.Second, 8e6})
	got := tr.FinishTime(0, 2e6)
	if got != 3*time.Second {
		t.Fatalf("FinishTime with outage = %v, want 3s", got)
	}
}

func TestFinishTimeForeverZeroStalls(t *testing.T) {
	tr := MustSteps(Step{0, 8e6}, Step{time.Second, 0})
	got := tr.FinishTime(0, 2e6)
	if got < time.Hour {
		t.Fatalf("FinishTime on dead link = %v, want effectively never", got)
	}
}

func TestFinishTimeZeroBytes(t *testing.T) {
	tr := Constant(1e6)
	if got := tr.FinishTime(5*time.Second, 0); got != 5*time.Second {
		t.Fatalf("FinishTime(0 bytes) = %v, want 5s", got)
	}
}

func TestMeanRate(t *testing.T) {
	tr := MustSteps(Step{0, 1e6}, Step{time.Second, 3e6})
	got := tr.MeanRate(0, 2*time.Second)
	if math.Abs(got-2e6) > 1 {
		t.Fatalf("MeanRate = %v, want 2e6", got)
	}
}

func TestFinishTimeMonotoneInBytes(t *testing.T) {
	tr := MustSteps(Step{0, 3e6}, Step{2 * time.Second, 1e6}, Step{5 * time.Second, 6e6})
	f := func(a, b uint32) bool {
		x, y := int64(a%1e7), int64(b%1e7)
		if x > y {
			x, y = y, x
		}
		return tr.FinishTime(0, x) <= tr.FinishTime(0, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathDeliversAndAccountsBytes(t *testing.T) {
	clock := sim.NewClock(1)
	p := NewPath(clock, "wifi", Constant(8e6), 10*time.Millisecond, 0)
	var d Delivery
	p.Transfer(1e6, Reliable, func(x Delivery) { d = x })
	clock.Run()
	// 1 MB at 1 MB/s = 1s + 10ms latency.
	if d.Done != 1010*time.Millisecond {
		t.Fatalf("Done = %v, want 1.01s", d.Done)
	}
	if !d.OK {
		t.Fatal("reliable transfer not OK")
	}
	if p.BytesMoved() != 1e6 {
		t.Fatalf("BytesMoved = %d, want 1e6", p.BytesMoved())
	}
	if p.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain", p.InFlight())
	}
}

func TestPathFIFOSerialization(t *testing.T) {
	clock := sim.NewClock(1)
	p := NewPath(clock, "wifi", Constant(8e6), 0, 0)
	var first, second time.Duration
	p.Transfer(1e6, Reliable, func(d Delivery) { first = d.Done })
	p.Transfer(1e6, Reliable, func(d Delivery) { second = d.Done })
	clock.Run()
	if first != time.Second {
		t.Fatalf("first = %v, want 1s", first)
	}
	if second != 2*time.Second {
		t.Fatalf("second = %v, want 2s (queued behind first)", second)
	}
}

func TestPathQueueDelay(t *testing.T) {
	clock := sim.NewClock(1)
	p := NewPath(clock, "wifi", Constant(8e6), 0, 0)
	if p.QueueDelay() != 0 {
		t.Fatal("idle path has queue delay")
	}
	p.Transfer(2e6, Reliable, nil)
	if got := p.QueueDelay(); got != 2*time.Second {
		t.Fatalf("QueueDelay = %v, want 2s", got)
	}
	clock.Run()
	if p.QueueDelay() != 0 {
		t.Fatal("drained path has queue delay")
	}
}

func TestPathThroughputSample(t *testing.T) {
	clock := sim.NewClock(1)
	p := NewPath(clock, "wifi", Constant(8e6), 0, 0)
	var d Delivery
	p.Transfer(1e6, Reliable, func(x Delivery) { d = x })
	clock.Run()
	if math.Abs(d.Throughput()-8e6) > 1 {
		t.Fatalf("Throughput = %v, want 8e6", d.Throughput())
	}
}

func TestPathLossSlowsReliable(t *testing.T) {
	clock := sim.NewClock(1)
	clean := NewPath(clock, "a", Constant(8e6), 0, 0)
	lossy := NewPath(clock, "b", Constant(8e6), 0, 0.1)
	var tClean, tLossy time.Duration
	clean.Transfer(1e6, Reliable, func(d Delivery) { tClean = d.Done })
	lossy.Transfer(1e6, Reliable, func(d Delivery) { tLossy = d.Done })
	clock.Run()
	if tLossy <= tClean {
		t.Fatalf("lossy reliable %v not slower than clean %v", tLossy, tClean)
	}
	if tLossy > 3*tClean {
		t.Fatalf("10%% loss inflated transfer %v vs %v beyond model bound", tLossy, tClean)
	}
}

func TestPathBestEffortDropsSome(t *testing.T) {
	clock := sim.NewClock(7)
	p := NewPath(clock, "lossy", Constant(1e9), 0, 0.05)
	dropped, delivered := 0, 0
	for i := 0; i < 200; i++ {
		p.Transfer(256<<10, BestEffort, func(d Delivery) {
			if d.OK {
				delivered++
			} else {
				dropped++
			}
		})
	}
	clock.Run()
	if dropped == 0 {
		t.Fatal("no best-effort transfers dropped at 5% loss")
	}
	if delivered == 0 {
		t.Fatal("all best-effort transfers dropped at 5% loss")
	}
}

func TestPathBestEffortNeverDropsOnCleanLink(t *testing.T) {
	clock := sim.NewClock(7)
	p := NewPath(clock, "clean", Constant(1e9), 0, 0)
	for i := 0; i < 50; i++ {
		p.Transfer(256<<10, BestEffort, func(d Delivery) {
			if !d.OK {
				t.Error("drop on loss-free path")
			}
		})
	}
	clock.Run()
}

func TestPathUnlimited(t *testing.T) {
	clock := sim.NewClock(1)
	p := NewPath(clock, "infinite", nil, 5*time.Millisecond, 0)
	var done time.Duration
	p.Transfer(1e9, Reliable, func(d Delivery) { done = d.Done })
	clock.Run()
	if done != 5*time.Millisecond {
		t.Fatalf("unlimited path done = %v, want latency only", done)
	}
}

func TestPathEstimateMatchesActual(t *testing.T) {
	clock := sim.NewClock(1)
	p := NewPath(clock, "wifi", Constant(8e6), 20*time.Millisecond, 0)
	est := p.EstimateTransferTime(1e6)
	var d Delivery
	p.Transfer(1e6, Reliable, func(x Delivery) { d = x })
	clock.Run()
	actual := d.Done - d.Start
	if diff := (est - actual).Abs(); diff > 5*time.Millisecond {
		t.Fatalf("estimate %v vs actual %v", est, actual)
	}
}

func TestPathInvalidLossPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("loss 1.0 accepted")
		}
	}()
	NewPath(sim.NewClock(1), "x", nil, 0, 1.0)
}

func TestEWMA(t *testing.T) {
	var e EWMA
	if e.Estimate() != 0 {
		t.Fatal("empty EWMA nonzero")
	}
	e.Add(10e6)
	if e.Estimate() != 10e6 {
		t.Fatal("first sample not adopted")
	}
	e.Add(0)
	if got := e.Estimate(); got != 7e6 {
		t.Fatalf("EWMA = %v, want 7e6 (alpha 0.3)", got)
	}
}

func TestHarmonicMeanDiscountsSpikes(t *testing.T) {
	var h HarmonicMean
	for _, s := range []float64{1e6, 1e6, 1e6, 1e6, 100e6} {
		h.Add(s)
	}
	// Arithmetic mean would be ~20.8e6; harmonic stays near 1e6.
	if got := h.Estimate(); got > 2e6 {
		t.Fatalf("harmonic mean %v inflated by spike", got)
	}
}

func TestHarmonicMeanWindowSlides(t *testing.T) {
	h := HarmonicMean{Window: 3}
	for i := 0; i < 10; i++ {
		h.Add(1e6)
	}
	h.Add(4e6)
	h.Add(4e6)
	h.Add(4e6)
	if got := h.Estimate(); math.Abs(got-4e6) > 1 {
		t.Fatalf("window did not slide: %v", got)
	}
}

func TestHarmonicMeanIgnoresNonPositive(t *testing.T) {
	var h HarmonicMean
	h.Add(-5)
	h.Add(0)
	if h.Estimate() != 0 {
		t.Fatal("non-positive samples recorded")
	}
}

func TestLTETraceBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := LTETrace(rng, 10e6, time.Second, time.Minute)
	for ts := time.Duration(0); ts < time.Minute; ts += 500 * time.Millisecond {
		r := tr.RateAt(ts)
		if r < 0.05*10e6 || r > 2.6*10e6 {
			t.Fatalf("LTE rate %v at %v outside bounds", r, ts)
		}
	}
}

func TestWiFiTraceMostlyStable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := WiFiTrace(rng, 20e6, time.Second, time.Minute)
	stable := 0
	total := 0
	for ts := time.Duration(0); ts < time.Minute; ts += time.Second {
		total++
		if tr.RateAt(ts) > 0.8*20e6 {
			stable++
		}
	}
	if float64(stable)/float64(total) < 0.7 {
		t.Fatalf("WiFi trace stable only %d/%d intervals", stable, total)
	}
}

func TestTraceGeneratorsDeterministic(t *testing.T) {
	a := LTETrace(rand.New(rand.NewSource(9)), 5e6, time.Second, 30*time.Second)
	b := LTETrace(rand.New(rand.NewSource(9)), 5e6, time.Second, 30*time.Second)
	for ts := time.Duration(0); ts < 30*time.Second; ts += time.Second {
		if a.RateAt(ts) != b.RateAt(ts) {
			t.Fatal("same-seed traces differ")
		}
	}
}

func TestParseTrace(t *testing.T) {
	tr, err := ParseTrace("0:8M,10s:1.5M,1m:500k")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 8e6}, {5 * time.Second, 8e6}, {10 * time.Second, 1.5e6},
		{59 * time.Second, 1.5e6}, {2 * time.Minute, 500e3},
	}
	for _, c := range cases {
		if got := tr.RateAt(c.at); got != c.want {
			t.Errorf("RateAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"", "nonsense", "0:8M,5s", "5s:1M", "0:-3M", "0:8M,3s:1M,2s:2M", "0:xM",
	} {
		if _, err := ParseTrace(bad); err == nil {
			t.Errorf("ParseTrace(%q) accepted", bad)
		}
	}
}

func TestTraceSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{"0:8M", "0:8M,10s:1.5M,1m0s:500k", "0:250"} {
		tr, err := ParseTrace(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		again, err := ParseTrace(tr.Spec())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", tr.Spec(), err)
		}
		for _, at := range []time.Duration{0, 5 * time.Second, time.Minute, time.Hour} {
			if tr.RateAt(at) != again.RateAt(at) {
				t.Fatalf("%q: spec round-trip changed rates", spec)
			}
		}
	}
}

func TestPathJitterSpreadsArrivals(t *testing.T) {
	clock := sim.NewClock(9)
	p := NewPath(clock, "jittery", Constant(1e9), 10*time.Millisecond, 0)
	p.Jitter = 30 * time.Millisecond
	seen := map[time.Duration]bool{}
	var min, max time.Duration
	min = time.Hour
	for i := 0; i < 40; i++ {
		p.Transfer(1000, Reliable, func(d Delivery) {
			lat := d.Done - d.Service
			seen[lat] = true
			if lat < min {
				min = lat
			}
			if lat > max {
				max = lat
			}
		})
	}
	clock.Run()
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct latencies", len(seen))
	}
	if min < 10*time.Millisecond {
		t.Fatalf("latency %v below propagation floor", min)
	}
	if max >= 41*time.Millisecond {
		t.Fatalf("latency %v beyond propagation+jitter bound", max)
	}
}

func TestPathZeroJitterDeterministicLatency(t *testing.T) {
	clock := sim.NewClock(9)
	p := NewPath(clock, "calm", Constant(1e9), 10*time.Millisecond, 0)
	for i := 0; i < 5; i++ {
		p.Transfer(1000, Reliable, func(d Delivery) {
			if got := d.Done - d.Service; got < 10*time.Millisecond || got > 11*time.Millisecond {
				t.Errorf("latency %v without jitter", got)
			}
		})
	}
	clock.Run()
}

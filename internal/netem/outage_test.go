package netem

import (
	"math"
	"testing"
	"time"

	"sperke/internal/sim"
)

func TestOutageDefersReliableTransfer(t *testing.T) {
	clock := sim.NewClock(1)
	p := NewPath(clock, "wifi", Constant(8e6), 0, 0)
	p.AddOutage(0, 2*time.Second)
	var d Delivery
	p.Transfer(1e6, Reliable, func(x Delivery) { d = x })
	clock.Run()
	// Service begins at the window's end: 2s wait + 1s transfer.
	if !d.OK {
		t.Fatal("reliable transfer through an outage must still deliver")
	}
	if d.Service != 2*time.Second {
		t.Fatalf("Service = %v, want 2s (outage end)", d.Service)
	}
	if d.Done != 3*time.Second {
		t.Fatalf("Done = %v, want 3s", d.Done)
	}
}

func TestOutageDropsBestEffortDeterministically(t *testing.T) {
	// Every best-effort transfer beginning inside the window is lost —
	// no randomness involved, so two runs agree exactly.
	for run := 0; run < 2; run++ {
		clock := sim.NewClock(42)
		p := NewPath(clock, "lte", Constant(8e6), 0, 0)
		p.AddOutage(time.Second, 3*time.Second)
		var inWindow, after Delivery
		clock.Schedule(2*time.Second, func() {
			p.Transfer(1e5, BestEffort, func(d Delivery) { inWindow = d })
		})
		clock.Schedule(3*time.Second, func() {
			p.Transfer(1e5, BestEffort, func(d Delivery) { after = d })
		})
		clock.Run()
		if inWindow.OK {
			t.Fatal("best-effort transfer inside an outage survived")
		}
		if inWindow.Done != 3*time.Second {
			t.Fatalf("loss observed at %v, want 3s (outage end)", inWindow.Done)
		}
		if !after.OK {
			t.Fatal("transfer after the outage was lost")
		}
	}
}

func TestOutageLossDoesNotConsumeLinkTime(t *testing.T) {
	clock := sim.NewClock(1)
	p := NewPath(clock, "lte", Constant(8e6), 0, 0)
	p.AddOutage(0, time.Second)
	p.Transfer(1e6, BestEffort, nil) // lost in the window
	var d Delivery
	clock.Schedule(time.Second, func() {
		p.Transfer(1e6, Reliable, func(x Delivery) { d = x })
	})
	clock.Run()
	if d.Done != 2*time.Second {
		t.Fatalf("Done = %v, want 2s — the lost transfer must not occupy the link", d.Done)
	}
	if p.BytesMoved() != 1e6 {
		t.Fatalf("BytesMoved = %d, want only the delivered 1e6", p.BytesMoved())
	}
}

func TestInOutageAndChainedWindows(t *testing.T) {
	clock := sim.NewClock(1)
	p := NewPath(clock, "wifi", Constant(8e6), 0, 0)
	p.AddOutage(time.Second, 2*time.Second)
	p.AddOutage(2*time.Second, 4*time.Second) // chained: starts where the first ends
	for _, tc := range []struct {
		at time.Duration
		in bool
	}{
		{0, false}, {time.Second, true}, {1500 * time.Millisecond, true},
		{2 * time.Second, true}, {3999 * time.Millisecond, true}, {4 * time.Second, false},
	} {
		if got := p.InOutage(tc.at); got != tc.in {
			t.Fatalf("InOutage(%v) = %v, want %v", tc.at, got, tc.in)
		}
	}
	// A reliable transfer at 1s defers past both chained windows.
	var d Delivery
	clock.Schedule(time.Second, func() {
		p.Transfer(1e6, Reliable, func(x Delivery) { d = x })
	})
	clock.Run()
	if d.Service != 4*time.Second {
		t.Fatalf("Service = %v, want 4s (end of the chained windows)", d.Service)
	}
}

func TestEstimateTransferTimeSeesOutage(t *testing.T) {
	clock := sim.NewClock(1)
	p := NewPath(clock, "wifi", Constant(8e6), 0, 0)
	p.AddOutage(0, 5*time.Second)
	if est := p.EstimateTransferTime(1e6); est < 5*time.Second {
		t.Fatalf("estimate %v ignores a 5s outage", est)
	}
}

func TestStallFreezesQueue(t *testing.T) {
	clock := sim.NewClock(1)
	p := NewPath(clock, "wifi", Constant(8e6), 0, 0)
	p.Stall(2 * time.Second)
	var d Delivery
	p.Transfer(1e6, Reliable, func(x Delivery) { d = x })
	// A stall shorter than the current backlog is a no-op: the queue
	// already extends to 3s.
	p.Stall(time.Second)
	var d2 Delivery
	p.Transfer(1e6, Reliable, func(x Delivery) { d2 = x })
	clock.Run()
	if d.Service != 2*time.Second || d.Done != 3*time.Second {
		t.Fatalf("Service/Done = %v/%v, want 2s/3s after a 2s stall", d.Service, d.Done)
	}
	if d2.Done != 4*time.Second {
		t.Fatalf("Done = %v, want 4s", d2.Done)
	}
}

func TestClampCarvesWindow(t *testing.T) {
	tr := Constant(8e6).Clamp(2*time.Second, 4*time.Second, 1e6)
	for _, tc := range []struct {
		at   time.Duration
		want float64
	}{
		{0, 8e6}, {2 * time.Second, 1e6}, {3 * time.Second, 1e6},
		{4 * time.Second, 8e6}, {time.Minute, 8e6},
	} {
		if got := tr.RateAt(tc.at); got != tc.want {
			t.Fatalf("RateAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	// A transfer starting in the window finishes against the clamped
	// schedule: 1 Mbit capacity in the remaining 1s of window, the rest
	// at 8 Mbit/s.
	fin := tr.FinishTime(3*time.Second, 1e6) // 8 Mbit total
	want := 4*time.Second + time.Duration(float64(8e6-1e6)/8e6*float64(time.Second))
	if diff := fin - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("FinishTime = %v, want ~%v", fin, want)
	}
}

func TestClampZeroMakesBlackout(t *testing.T) {
	tr := Constant(8e6).Clamp(time.Second, 2*time.Second, 0)
	if tr.RateAt(1500*time.Millisecond) != 0 {
		t.Fatal("window not blacked out")
	}
	// A transfer spanning the blackout stalls through it.
	fin := tr.FinishTime(0, 2e6) // 16 Mbit: 8 Mbit by 1s, stall, rest after 2s
	if fin != 3*time.Second {
		t.Fatalf("FinishTime = %v, want 3s", fin)
	}
}

func TestClampNilBaseIsUnlimitedOutsideWindow(t *testing.T) {
	var base *BandwidthTrace
	tr := base.Clamp(time.Second, 2*time.Second, 1e6)
	if !math.IsInf(tr.RateAt(0), 1) || !math.IsInf(tr.RateAt(3*time.Second), 1) {
		t.Fatal("nil base must stay unlimited outside the window")
	}
	if tr.RateAt(time.Second) != 1e6 {
		t.Fatal("window not clamped on nil base")
	}
}

func TestClampPreservesStepsAndComposes(t *testing.T) {
	tr := MustSteps(Step{0, 8e6}, Step{10 * time.Second, 2e6})
	clamped := tr.Clamp(5*time.Second, 15*time.Second, 4e6)
	if clamped.RateAt(0) != 8e6 {
		t.Fatal("pre-window step changed")
	}
	if clamped.RateAt(5*time.Second) != 4e6 {
		t.Fatal("window start not clamped")
	}
	if clamped.RateAt(12*time.Second) != 2e6 {
		t.Fatal("in-window rate below the cap must pass through")
	}
	if clamped.RateAt(15*time.Second) != 2e6 {
		t.Fatal("post-window rate wrong")
	}
	// Clamps compose: a second window on the already-clamped trace.
	twice := clamped.Clamp(0, 2*time.Second, 1e6)
	if twice.RateAt(time.Second) != 1e6 || twice.RateAt(6*time.Second) != 4e6 {
		t.Fatal("composed clamp wrong")
	}
}

func TestClampDegenerateWindowIsNoOp(t *testing.T) {
	tr := Constant(8e6)
	if got := tr.Clamp(5*time.Second, 5*time.Second, 0); got != tr {
		t.Fatal("empty window should return the receiver")
	}
	if got := tr.Clamp(5*time.Second, time.Second, 0); got != tr {
		t.Fatal("inverted window should return the receiver")
	}
}

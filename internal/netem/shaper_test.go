package netem

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipeConn adapts an in-memory pipe to net.Conn for shaper tests.
func testPipe(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func TestRateLimitedConnThrottles(t *testing.T) {
	a, b := testPipe(t)
	// 800 kbps = 100 KB/s; writing 50 KB should take ≈ 0.5s, minus the
	// initial 32 KiB burst → ≥ 150ms.
	shaped := NewRateLimitedConn(a, 800e3, 0)

	var got bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		io.CopyN(&got, b, 50<<10)
	}()

	start := time.Now()
	data := make([]byte, 50<<10)
	if _, err := shaped.Write(data); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < 100*time.Millisecond {
		t.Fatalf("50KB at 100KB/s took only %v", elapsed)
	}
	if got.Len() != 50<<10 {
		t.Fatalf("received %d bytes, want %d", got.Len(), 50<<10)
	}
}

func TestRateLimitedConnUnlimited(t *testing.T) {
	a, b := testPipe(t)
	shaped := NewRateLimitedConn(a, 0, 0) // unlimited
	go io.Copy(io.Discard, b)
	start := time.Now()
	if _, err := shaped.Write(make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("unlimited shaper throttled")
	}
}

func TestRateLimitedConnSetRate(t *testing.T) {
	a, b := testPipe(t)
	shaped := NewRateLimitedConn(a, 1e3, 0) // absurdly slow
	shaped.SetRate(0)                       // then unlimited
	go io.Copy(io.Discard, b)
	done := make(chan struct{})
	go func() {
		shaped.Write(make([]byte, 256<<10))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("SetRate(0) did not lift the throttle")
	}
}

func TestRateLimitedConnDataIntegrity(t *testing.T) {
	a, b := testPipe(t)
	shaped := NewRateLimitedConn(a, 10e6, 4<<10)
	want := make([]byte, 100<<10)
	for i := range want {
		want[i] = byte(i * 31)
	}
	var got bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		io.CopyN(&got, b, int64(len(want)))
	}()
	if _, err := shaped.Write(want); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("shaped write corrupted data")
	}
}

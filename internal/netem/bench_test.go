package netem

import (
	"testing"
	"time"
)

func BenchmarkFinishTime(b *testing.B) {
	tr := MustSteps(
		Step{0, 5e6}, Step{2 * time.Second, 1e6},
		Step{5 * time.Second, 8e6}, Step{9 * time.Second, 3e6},
	)
	for i := 0; i < b.N; i++ {
		tr.FinishTime(time.Duration(i%9)*time.Second, 4e6)
	}
}

func BenchmarkEstimators(b *testing.B) {
	b.Run("ewma", func(b *testing.B) {
		var e EWMA
		for i := 0; i < b.N; i++ {
			e.Add(float64(1e6 + i%100))
			e.Estimate()
		}
	})
	b.Run("harmonic", func(b *testing.B) {
		var h HarmonicMean
		for i := 0; i < b.N; i++ {
			h.Add(float64(1e6 + i%100))
			h.Estimate()
		}
	})
}

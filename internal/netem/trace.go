// Package netem emulates the network paths 360° video streams traverse:
// time-varying bandwidth, propagation latency, and loss, over the
// deterministic sim clock. It also provides the bandwidth estimators
// rate adaptation consumes (§3.1.2 "network bandwidth estimation") and a
// real net.Conn rate shaper used by loopback integration tests — the
// stand-in for the `tc` tool the paper's measurement study uses
// (§3.4.1).
package netem

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// BandwidthTrace is a piecewise-constant bandwidth schedule: the rate in
// bits/s that a path offers as a function of time. Traces are immutable
// once built.
type BandwidthTrace struct {
	steps []traceStep // sorted by start; steps[0].start == 0
}

type traceStep struct {
	start time.Duration
	bps   float64
}

// Constant returns a trace with a fixed rate.
func Constant(bps float64) *BandwidthTrace {
	return &BandwidthTrace{steps: []traceStep{{0, bps}}}
}

// Steps builds a trace from (start, bps) pairs. The first pair must
// start at 0 and starts must be strictly increasing.
func Steps(pairs ...Step) (*BandwidthTrace, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("netem: empty trace")
	}
	if pairs[0].Start != 0 {
		return nil, fmt.Errorf("netem: trace must start at 0, got %v", pairs[0].Start)
	}
	tr := &BandwidthTrace{steps: make([]traceStep, len(pairs))}
	for i, p := range pairs {
		if i > 0 && p.Start <= pairs[i-1].Start {
			return nil, fmt.Errorf("netem: trace starts not increasing at %d", i)
		}
		if p.BPS < 0 {
			return nil, fmt.Errorf("netem: negative rate at %d", i)
		}
		tr.steps[i] = traceStep{p.Start, p.BPS}
	}
	return tr, nil
}

// Step is one (start time, rate) segment of a bandwidth trace.
type Step struct {
	Start time.Duration
	BPS   float64
}

// MustSteps is Steps that panics on error, for literals in tests and
// experiment setups.
func MustSteps(pairs ...Step) *BandwidthTrace {
	tr, err := Steps(pairs...)
	if err != nil {
		panic(err)
	}
	return tr
}

// RateAt returns the rate in bits/s at time t. Times before zero clamp
// to the first step.
func (tr *BandwidthTrace) RateAt(t time.Duration) float64 {
	i := sort.Search(len(tr.steps), func(i int) bool { return tr.steps[i].start > t })
	if i == 0 {
		return tr.steps[0].bps
	}
	return tr.steps[i-1].bps
}

// FinishTime returns the virtual time at which a transfer of the given
// bytes completes if it starts at start and consumes the full trace
// rate. If the trace rate drops to zero forever, FinishTime returns a
// very large time (the transfer stalls indefinitely).
func (tr *BandwidthTrace) FinishTime(start time.Duration, bytes int64) time.Duration {
	const never = time.Duration(1<<62 - 1)
	if bytes <= 0 {
		return start
	}
	remaining := float64(bytes) * 8 // bits
	t := start
	i := sort.Search(len(tr.steps), func(i int) bool { return tr.steps[i].start > t })
	if i > 0 {
		i--
	}
	for {
		rate := tr.steps[i].bps
		var segEnd time.Duration
		if i+1 < len(tr.steps) {
			segEnd = tr.steps[i+1].start
		} else {
			// Final segment extends forever.
			if rate <= 0 {
				return never
			}
			return t + time.Duration(remaining/rate*float64(time.Second))
		}
		if rate > 0 {
			segSec := (segEnd - t).Seconds()
			capacity := rate * segSec
			if capacity >= remaining {
				return t + time.Duration(remaining/rate*float64(time.Second))
			}
			remaining -= capacity
		}
		t = segEnd
		i++
	}
}

// Clamp returns a new trace whose rate inside [from, to) is capped at
// bps — the primitive fault plans use to carve bandwidth cliffs
// (bps > 0) and blackout windows (bps == 0) into a schedule. A nil
// receiver is treated as an unlimited-rate base. Outside the window the
// trace is unchanged.
func (tr *BandwidthTrace) Clamp(from, to time.Duration, bps float64) *BandwidthTrace {
	if from < 0 {
		from = 0
	}
	if to <= from {
		return tr
	}
	rateAt := func(t time.Duration) float64 {
		if tr == nil {
			return math.Inf(1)
		}
		return tr.RateAt(t)
	}
	points := []time.Duration{0, from, to}
	if tr != nil {
		for _, st := range tr.steps {
			points = append(points, st.start)
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	out := &BandwidthTrace{}
	for i, t := range points {
		if i > 0 && t == points[i-1] {
			continue
		}
		r := rateAt(t)
		if t >= from && t < to && r > bps {
			r = bps
		}
		if n := len(out.steps); n > 0 && out.steps[n-1].bps == r {
			continue
		}
		out.steps = append(out.steps, traceStep{t, r})
	}
	return out
}

// MeanRate returns the average rate over [from, to].
func (tr *BandwidthTrace) MeanRate(from, to time.Duration) float64 {
	if to <= from {
		return tr.RateAt(from)
	}
	var bits float64
	t := from
	for t < to {
		rate := tr.RateAt(t)
		next := to
		i := sort.Search(len(tr.steps), func(i int) bool { return tr.steps[i].start > t })
		if i < len(tr.steps) && tr.steps[i].start < to {
			next = tr.steps[i].start
		}
		bits += rate * (next - t).Seconds()
		t = next
	}
	return bits / (to - from).Seconds()
}

// LTETrace synthesizes an LTE-like fluctuating trace: a bounded random
// walk around mean bps with occasional deep fades, one step per
// interval, for the given total duration. Deterministic for a given
// rng.
func LTETrace(rng *rand.Rand, mean float64, interval, total time.Duration) *BandwidthTrace {
	if interval <= 0 {
		interval = time.Second
	}
	steps := []traceStep{}
	cur := mean
	for t := time.Duration(0); t < total; t += interval {
		// Multiplicative random walk, clamped to [0.15, 2.5]× the mean.
		cur *= 1 + (rng.Float64()-0.5)*0.4
		if cur < 0.15*mean {
			cur = 0.15 * mean
		}
		if cur > 2.5*mean {
			cur = 2.5 * mean
		}
		rate := cur
		// ~5% of intervals are deep fades (handover, blockage).
		if rng.Float64() < 0.05 {
			rate = 0.1 * mean
		}
		steps = append(steps, traceStep{t, rate})
	}
	if len(steps) == 0 {
		steps = []traceStep{{0, mean}}
	}
	return &BandwidthTrace{steps: steps}
}

// WiFiTrace synthesizes a WiFi-like trace: mostly stable around mean
// with occasional congestion dips to ~40%.
func WiFiTrace(rng *rand.Rand, mean float64, interval, total time.Duration) *BandwidthTrace {
	if interval <= 0 {
		interval = time.Second
	}
	steps := []traceStep{}
	for t := time.Duration(0); t < total; t += interval {
		rate := mean * (0.9 + 0.2*rng.Float64())
		if rng.Float64() < 0.08 {
			rate = mean * 0.4
		}
		steps = append(steps, traceStep{t, rate})
	}
	if len(steps) == 0 {
		steps = []traceStep{{0, mean}}
	}
	return &BandwidthTrace{steps: steps}
}

// ParseTrace parses a compact textual bandwidth schedule:
//
//	"0:8M,10s:1.5M,1m:500k"
//
// Each comma-separated step is start:rate; starts use Go duration
// syntax ("0" allowed) and must increase from zero; rates accept k/M/G
// suffixes in bits per second. The format is what CLI flags and config
// files use to describe link behaviour, the role `tc` scripts play in
// the paper's testbed.
func ParseTrace(s string) (*BandwidthTrace, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("netem: empty trace spec")
	}
	var steps []Step
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		fields := strings.SplitN(part, ":", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("netem: step %q is not start:rate", part)
		}
		var start time.Duration
		if fields[0] != "0" {
			var err error
			start, err = time.ParseDuration(fields[0])
			if err != nil {
				return nil, fmt.Errorf("netem: step %q: %w", part, err)
			}
		}
		bps, err := parseRate(fields[1])
		if err != nil {
			return nil, fmt.Errorf("netem: step %q: %w", part, err)
		}
		steps = append(steps, Step{Start: start, BPS: bps})
	}
	return Steps(steps...)
}

// parseRate parses "8M", "1.5M", "500k", "2G" or a bare number into
// bits per second.
func parseRate(s string) (float64, error) {
	s = strings.TrimSpace(s)
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1e9, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult, s = 1e6, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "k"):
		mult, s = 1e3, strings.TrimSuffix(s, "k")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, fmt.Errorf("negative rate %q", s)
	}
	return v * mult, nil
}

// Spec renders the trace back into ParseTrace's format.
func (tr *BandwidthTrace) Spec() string {
	parts := make([]string, len(tr.steps))
	for i, st := range tr.steps {
		start := "0"
		if st.start != 0 {
			start = st.start.String()
		}
		parts[i] = start + ":" + formatRate(st.bps)
	}
	return strings.Join(parts, ",")
}

func formatRate(bps float64) string {
	switch {
	case bps >= 1e9 && bps == float64(int64(bps/1e9))*1e9:
		return strconv.FormatFloat(bps/1e9, 'f', -1, 64) + "G"
	case bps >= 1e6:
		return strconv.FormatFloat(bps/1e6, 'f', -1, 64) + "M"
	case bps >= 1e3:
		return strconv.FormatFloat(bps/1e3, 'f', -1, 64) + "k"
	default:
		return strconv.FormatFloat(bps, 'f', -1, 64)
	}
}

package netem

// ThroughputEstimator smooths observed per-transfer throughput samples
// into the bandwidth prediction rate adaptation plans against
// (§3.1.2). Implementations are not safe for concurrent use; the
// session loop owns them.
type ThroughputEstimator interface {
	// Add records one observed sample in bits/s.
	Add(bps float64)
	// Estimate returns the current prediction in bits/s; zero when no
	// samples have been recorded.
	Estimate() float64
}

// EWMA is an exponentially weighted moving average estimator, the
// classic DASH client smoother.
type EWMA struct {
	// Alpha is the weight of the newest sample in (0,1]; 0 defaults to
	// 0.3.
	Alpha float64

	value float64
	seen  bool
}

// Add implements ThroughputEstimator.
func (e *EWMA) Add(bps float64) {
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.3
	}
	if !e.seen {
		e.value = bps
		e.seen = true
		return
	}
	e.value = a*bps + (1-a)*e.value
}

// Estimate implements ThroughputEstimator.
func (e *EWMA) Estimate() float64 {
	if !e.seen {
		return 0
	}
	return e.value
}

// HarmonicMean estimates over a sliding window with the harmonic mean,
// which discounts outlier spikes — the estimator FESTIVE-style VRA uses
// [29].
type HarmonicMean struct {
	// Window is the number of samples retained; 0 defaults to 5.
	Window int

	samples []float64
}

// Add implements ThroughputEstimator.
func (h *HarmonicMean) Add(bps float64) {
	if bps <= 0 {
		return
	}
	w := h.Window
	if w <= 0 {
		w = 5
	}
	h.samples = append(h.samples, bps)
	if len(h.samples) > w {
		h.samples = h.samples[len(h.samples)-w:]
	}
}

// Estimate implements ThroughputEstimator.
func (h *HarmonicMean) Estimate() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	var invSum float64
	for _, s := range h.samples {
		invSum += 1 / s
	}
	return float64(len(h.samples)) / invSum
}

package netem

import (
	"fmt"
	"math"
	"time"

	"sperke/internal/sim"
)

// Delivery reports the outcome of a transfer over a Path.
type Delivery struct {
	// Start is when the transfer was submitted; Service when the link
	// began moving its bytes (after queueing behind earlier transfers);
	// Done when the last byte (plus propagation) arrived.
	Start, Service, Done time.Duration
	// Bytes is the transfer size.
	Bytes int64
	// OK is false when a best-effort transfer was lost.
	OK bool
}

// Throughput returns the observed goodput in bits/s over the service
// span — what a sequential HTTP client measures per request. Queueing
// behind the client's own earlier transfers is excluded, since a real
// player issues requests one at a time.
func (d Delivery) Throughput() float64 {
	el := (d.Done - d.Service).Seconds()
	if el <= 0 {
		return math.Inf(1)
	}
	return float64(d.Bytes) * 8 / el
}

// QoS selects the delivery semantics of a transfer (§3.3: FoV chunks
// reliable, OOS chunks best-effort).
type QoS int

const (
	// Reliable delivers every transfer; loss shows up as reduced goodput
	// (retransmissions), like TCP.
	Reliable QoS = iota
	// BestEffort delivers at full path rate but may drop the transfer
	// entirely, like an unreliable datagram stream.
	BestEffort
)

// Path is one emulated network path (e.g., "wifi" or "lte"): a FIFO
// bottleneck link with a bandwidth trace, a fixed one-way propagation
// latency, and a loss rate. Transfers submitted to a path serialize
// behind each other, as HTTP fetches over a single TCP connection do.
type Path struct {
	Name    string
	Latency time.Duration // one-way propagation
	// Jitter adds a uniformly distributed extra delay in [0, Jitter) to
	// each delivery — queueing noise beyond this flow's own backlog.
	Jitter time.Duration
	Loss   float64 // packet loss probability in [0,1)

	clock      *sim.Clock
	trace      *BandwidthTrace
	freeAt     time.Duration // when the link drains its current queue
	inFlight   int
	bytesMoved int64
	outages    []outage
}

// outage is a half-open blackout window [from, to) during which the
// path carries nothing.
type outage struct{ from, to time.Duration }

// NewPath creates a path on the given clock. A nil trace means
// unlimited bandwidth.
func NewPath(clock *sim.Clock, name string, trace *BandwidthTrace, latency time.Duration, loss float64) *Path {
	if loss < 0 || loss >= 1 {
		panic(fmt.Sprintf("netem: loss %v out of [0,1)", loss))
	}
	return &Path{Name: name, Latency: latency, Loss: loss, clock: clock, trace: trace}
}

// SetTrace replaces the bandwidth schedule (takes effect for transfers
// that start afterwards).
func (p *Path) SetTrace(tr *BandwidthTrace) { p.trace = tr }

// Trace returns the current bandwidth schedule (nil = unlimited).
func (p *Path) Trace() *BandwidthTrace { return p.trace }

// AddOutage marks [from, to) as a blackout window: reliable transfers
// whose service would begin inside it defer to the window's end (TCP
// retransmitting until the path heals), best-effort transfers beginning
// inside it are lost deterministically. Callers modelling a full outage
// should also clamp the trace to zero over the window (see
// BandwidthTrace.Clamp) so transfers already in service stall through
// it.
func (p *Path) AddOutage(from, to time.Duration) {
	if to <= from {
		return
	}
	p.outages = append(p.outages, outage{from, to})
}

// InOutage reports whether t falls inside a registered outage window.
func (p *Path) InOutage(t time.Duration) bool {
	_, in := p.outageEnd(t)
	return in
}

// outageEnd returns the end of the outage window containing t, walking
// chained windows (an outage ending exactly where another begins).
func (p *Path) outageEnd(t time.Duration) (time.Duration, bool) {
	end, in := t, false
	for changed := true; changed; {
		changed = false
		for _, o := range p.outages {
			if end >= o.from && end < o.to {
				end, in, changed = o.to, true, true
			}
		}
	}
	return end, in
}

// Stall freezes the link for d starting now: transfers submitted from
// now on do not begin service before now+d. Transfers already scheduled
// keep their completion times (their bytes are already "in the pipe").
func (p *Path) Stall(d time.Duration) {
	if t := p.clock.Now() + d; t > p.freeAt {
		p.freeAt = t
	}
}

// RateAt reports the path's raw rate at time t (Inf for unlimited).
func (p *Path) RateAt(t time.Duration) float64 {
	if p.trace == nil {
		return math.Inf(1)
	}
	return p.trace.RateAt(t)
}

// goodputFactor converts raw rate into TCP-like goodput under loss:
// retransmissions and window collapses eat throughput superlinearly.
func (p *Path) goodputFactor() float64 {
	f := (1 - p.Loss) * (1 - p.Loss)
	return f
}

// InFlight reports the number of queued or active transfers.
func (p *Path) InFlight() int { return p.inFlight }

// BytesMoved reports the total bytes this path has delivered.
func (p *Path) BytesMoved() int64 { return p.bytesMoved }

// QueueDelay reports how long a transfer submitted now would wait before
// its first byte is serviced — the signal multipath schedulers use to
// pick the less-backed-up path.
func (p *Path) QueueDelay() time.Duration {
	if p.freeAt <= p.clock.Now() {
		return 0
	}
	return p.freeAt - p.clock.Now()
}

// Transfer submits bytes for delivery with the given QoS and calls done
// with the outcome when the transfer completes (or is dropped). The
// returned event can be used to cancel a queued transfer; cancellation
// after completion is a no-op. done may be nil.
func (p *Path) Transfer(bytes int64, qos QoS, done func(Delivery)) *sim.Event {
	now := p.clock.Now()
	start := now
	if p.freeAt > start {
		start = p.freeAt
	}
	if end, in := p.outageEnd(start); in {
		if qos == BestEffort {
			// The datagram burst enters a dead path and vanishes; the
			// sender learns of the loss once the window has passed.
			p.inFlight++
			return p.clock.Schedule(end, func() {
				p.inFlight--
				if done != nil {
					done(Delivery{Start: now, Service: start, Done: p.clock.Now(), Bytes: bytes, OK: false})
				}
			})
		}
		// Reliable transfers retransmit until the path heals: service
		// begins at the window's end.
		start = end
	}
	var finish time.Duration
	rate := p.RateAt(start)
	switch {
	case p.trace == nil || math.IsInf(rate, 1):
		finish = start
	case qos == Reliable:
		finish = p.trace.FinishTime(start, p.inflate(bytes))
	default:
		finish = p.trace.FinishTime(start, bytes)
	}
	p.freeAt = finish
	p.inFlight++

	ok := true
	if qos == BestEffort && p.Loss > 0 {
		// A chunk survives only if all of its ~64 KiB bursts survive.
		bursts := float64(bytes)/65536 + 1
		if p.clock.RNG("netem:"+p.Name).Float64() > math.Pow(1-p.Loss, bursts) {
			ok = false
		}
	}
	arrival := finish + p.Latency
	if p.Jitter > 0 {
		arrival += time.Duration(p.clock.RNG("jitter:" + p.Name).Int63n(int64(p.Jitter)))
	}
	return p.clock.Schedule(arrival, func() {
		p.inFlight--
		if ok {
			p.bytesMoved += bytes
		}
		if done != nil {
			done(Delivery{Start: now, Service: start, Done: p.clock.Now(), Bytes: bytes, OK: ok})
		}
	})
}

// EstimateTransferTime predicts how long a reliable transfer of bytes
// submitted now would take, including queueing and propagation — the
// planning primitive VRA and multipath schedulers use.
func (p *Path) EstimateTransferTime(bytes int64) time.Duration {
	now := p.clock.Now()
	start := now
	if p.freeAt > start {
		start = p.freeAt
	}
	if end, in := p.outageEnd(start); in {
		start = end
	}
	if p.trace == nil {
		return start - now + p.Latency
	}
	finish := p.trace.FinishTime(start, p.inflate(bytes))
	return finish - now + p.Latency
}

// inflate stretches a reliable transfer by the inverse goodput factor to
// model retransmissions under loss. Loss-free paths move bytes exactly.
func (p *Path) inflate(bytes int64) int64 {
	if p.Loss == 0 {
		return bytes
	}
	eff := p.goodputFactor()
	if eff <= 0 {
		eff = 1e-9
	}
	return int64(math.Ceil(float64(bytes) / eff))
}

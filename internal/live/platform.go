// Package live models live 360° video broadcast (§3.4): a broadcaster
// uploads a panoramic stream to a server that re-encodes, packages, and
// disseminates it to viewers. The package reproduces the paper's pilot
// characterization study — platform profiles for Facebook, YouTube and
// Periscope calibrated against Table 2's end-to-end latency
// measurements — and implements the paper's two §3.4.2 proposals:
// spatial fall-back for the constrained uplink and crowd-sourced HMP
// for high-latency viewers.
package live

import (
	"time"

	"sperke/internal/media"
)

// Platform describes one commercial live 360° service as the paper's
// measurements characterize it (§3.4.1): ingest protocol and bitrate,
// server behaviour, and viewer-side delivery.
type Platform struct {
	Name string
	// IngestBitrate is the broadcaster encoder's output rate (fixed —
	// "no rate adaptation is currently used during a live 360° video
	// upload"; quality is fixed or manually set).
	IngestBitrate media.Bitrate
	// UploadQueueCap is how much encoded video (in media seconds) the
	// broadcaster app queues before dropping frames when the uplink
	// cannot keep up. A large cap trades latency for fewer skips.
	UploadQueueCap time.Duration
	// EncodeDelay is the camera + encoder latency before a segment can
	// leave the device.
	EncodeDelay time.Duration
	// ReencodeDelay is the server-side processing time before a received
	// segment is available to viewers (platforms re-encode into multiple
	// qualities).
	ReencodeDelay time.Duration
	// SegmentDur is the packaging granularity: a segment is only
	// available once entirely produced.
	SegmentDur time.Duration
	// PullBased selects the download path: DASH-style MPD polling
	// (Facebook, YouTube) or RTMP push (Periscope).
	PullBased bool
	// PollInterval is the viewer's MPD refresh period (pull only).
	PollInterval time.Duration
	// Prebuffer is how much content the viewer buffers before starting
	// playback.
	Prebuffer time.Duration
	// DownLadder lists the rates the server offers for download
	// adaptation (§3.4.1: 720p/1080p for Facebook, six levels for
	// YouTube). Empty means the source stream is relayed as-is
	// (Periscope).
	DownLadder []media.Bitrate
}

// Platform profiles. The structural facts (protocols, adaptation,
// ladder shapes) come from §3.4.1; the delay constants are calibrated
// so the unconstrained row of Table 2 lands near the paper's 9.2 /
// 12.4 / 22.2 seconds and the constrained rows inflate with the same
// ordering the paper reports.
var (
	// Facebook: RTMP up, DASH down with 720p/1080p; aggressive frame
	// dropping keeps its upload queue short.
	Facebook = Platform{
		Name:           "Facebook",
		IngestBitrate:  2200 * media.Kbps,
		UploadQueueCap: 4 * time.Second,
		EncodeDelay:    500 * time.Millisecond,
		ReencodeDelay:  3 * time.Second,
		SegmentDur:     2 * time.Second,
		PullBased:      true,
		PollInterval:   2 * time.Second,
		Prebuffer:      4 * time.Second,
		DownLadder:     []media.Bitrate{1500 * media.Kbps, 2500 * media.Kbps}, // 720p, 1080p
	}
	// Periscope: RTMP up and RTMP push down, no download adaptation,
	// generous buffering on both sides.
	Periscope = Platform{
		Name:           "Periscope",
		IngestBitrate:  2600 * media.Kbps,
		UploadQueueCap: 8 * time.Second,
		EncodeDelay:    500 * time.Millisecond,
		ReencodeDelay:  5500 * time.Millisecond,
		SegmentDur:     3 * time.Second,
		PullBased:      false,
		Prebuffer:      6 * time.Second,
	}
	// YouTube: RTMP up at a gentler rate, DASH down with six levels
	// (144p..1080p), big segments and deep player buffer.
	YouTube = Platform{
		Name:           "YouTube",
		IngestBitrate:  1800 * media.Kbps,
		UploadQueueCap: 2500 * time.Millisecond,
		EncodeDelay:    500 * time.Millisecond,
		ReencodeDelay:  6 * time.Second,
		SegmentDur:     5 * time.Second,
		PullBased:      true,
		PollInterval:   5 * time.Second,
		Prebuffer:      12 * time.Second,
		DownLadder: []media.Bitrate{
			200 * media.Kbps, 400 * media.Kbps, 750 * media.Kbps,
			1200 * media.Kbps, 2000 * media.Kbps, 3500 * media.Kbps,
		},
	}
)

// SperkeLive is the §3.4.2 endgame profile: the broadcaster uploads
// SVC layers, so the server only repackages instead of re-encoding
// (§3.4.2: "there is no need for the server to perform re-encoding
// because the client player can directly assemble individual layers");
// segments are short, the player buffer shallow, and viewers fetch
// FoV-guided — the download ladder carries only the ~45% FoV+OOS share
// of each panoramic rate.
var SperkeLive = Platform{
	Name:           "Sperke-live",
	IngestBitrate:  2000 * media.Kbps,
	UploadQueueCap: 3 * time.Second,
	EncodeDelay:    300 * time.Millisecond,
	ReencodeDelay:  300 * time.Millisecond, // layer repackaging only
	SegmentDur:     time.Second,
	PullBased:      true,
	PollInterval:   time.Second,
	Prebuffer:      2 * time.Second,
	DownLadder: []media.Bitrate{
		// LiveLadder × 0.45 (FoV + one OOS ring of a 4×6 grid).
		90 * media.Kbps, 180 * media.Kbps, 338 * media.Kbps,
		540 * media.Kbps, 900 * media.Kbps, 1575 * media.Kbps,
	},
}

// Platforms lists the three profiled services in Table 2's column
// order.
var Platforms = []Platform{Facebook, Periscope, YouTube}

// Condition is one row of Table 2: upload and download bandwidth caps
// in bits/s (0 = unlimited).
type Condition struct {
	Name     string
	Up, Down float64
}

// Table2Conditions are the five measured rows.
var Table2Conditions = []Condition{
	{Name: "No limit / No limit", Up: 0, Down: 0},
	{Name: "2Mbps / No limit", Up: 2e6, Down: 0},
	{Name: "No limit / 2Mbps", Up: 0, Down: 2e6},
	{Name: "0.5Mbps / No limit", Up: 0.5e6, Down: 0},
	{Name: "No limit / 0.5Mbps", Up: 0, Down: 0.5e6},
}

package live

import (
	"testing"
	"time"

	"sperke/internal/faults"
	"sperke/internal/netem"
	"sperke/internal/sim"
	"sperke/internal/transport"
)

func breakerCycle(trs []transport.BreakerTransition) (opened, reclosed bool) {
	for _, tr := range trs {
		if tr.To == transport.BreakerOpen {
			opened = true
		}
		if opened && tr.To == transport.BreakerClosed {
			reclosed = true
		}
	}
	return
}

func TestResilientBroadcastDegradesAcrossUplinkOutage(t *testing.T) {
	plan := faults.MustParse("outage:uplink:10s:5s")
	cfg := DegradeConfig{
		Breaker: transport.BreakerConfig{FailureThreshold: 2, Cooldown: 2 * time.Second},
		Plan:    HorizonPlan{SpanDeg: 180},
		ArmFaults: func(clock *sim.Clock, upload *netem.Path) {
			if err := plan.Apply(clock, upload); err != nil {
				t.Fatal(err)
			}
		},
	}
	run := MeasureE2EResilient(7, Facebook, netem.Constant(8e6), netem.Constant(10e6),
		30*time.Second, cfg)

	opened, reclosed := breakerCycle(run.Transitions)
	if !opened {
		t.Fatalf("uplink breaker never opened across a 5s outage; transitions %+v", run.Transitions)
	}
	if !reclosed {
		t.Fatalf("uplink breaker never re-closed after recovery; transitions %+v", run.Transitions)
	}
	if run.DegradedPieces == 0 {
		t.Fatal("no pieces uploaded at the fallback horizon")
	}
	if run.DegradedPieces >= run.TotalPieces {
		t.Fatalf("all %d pieces degraded — fallback never lifted", run.TotalPieces)
	}
	if run.Result.Samples == 0 {
		t.Fatal("viewer displayed nothing; the broadcast did not survive the outage")
	}
	nSegs := int(30 * time.Second / Facebook.SegmentDur)
	if run.Result.SkippedSegments >= nSegs {
		t.Fatalf("every segment skipped (%d/%d)", run.Result.SkippedSegments, nSegs)
	}
}

func TestResilientBroadcastCleanUplinkStaysPristine(t *testing.T) {
	run := MeasureE2EResilient(7, Facebook, netem.Constant(8e6), netem.Constant(10e6),
		20*time.Second, DegradeConfig{})
	if len(run.Transitions) != 0 {
		t.Fatalf("breaker moved on a healthy uplink: %+v", run.Transitions)
	}
	if run.DegradedPieces != 0 {
		t.Fatalf("%d pieces degraded with no faults", run.DegradedPieces)
	}
	if run.TotalPieces == 0 {
		t.Fatal("no pieces accounted")
	}
	if run.Result.SkippedSegments != 0 {
		t.Fatalf("%d skips on an uncontended uplink", run.Result.SkippedSegments)
	}
}

func TestResilientFallbackShedsUploadBytes(t *testing.T) {
	// Same outage, two horizons: the 120° fallback queues less during the
	// blackout than uploading the full panorama, so it should never skip
	// more segments.
	measure := func(spanDeg float64) ResilientRun {
		plan := faults.MustParse("outage:uplink:8s:6s")
		return MeasureE2EResilient(7, Facebook, netem.Constant(4e6), netem.Constant(10e6),
			30*time.Second, DegradeConfig{
				Breaker: transport.BreakerConfig{FailureThreshold: 2},
				Plan:    HorizonPlan{SpanDeg: spanDeg},
				ArmFaults: func(clock *sim.Clock, upload *netem.Path) {
					plan.Apply(clock, upload)
				},
			})
	}
	narrow := measure(120)
	full := measure(360)
	if narrow.Result.SkippedSegments > full.Result.SkippedSegments {
		t.Fatalf("narrow horizon skipped more (%d) than full span (%d)",
			narrow.Result.SkippedSegments, full.Result.SkippedSegments)
	}
	if o, _ := breakerCycle(narrow.Transitions); !o {
		t.Fatal("breaker never opened in the narrow run")
	}
}

func TestResilientRunIsDeterministic(t *testing.T) {
	measure := func() ResilientRun {
		plan := faults.MustParse("cliff:uplink:5s:10s:500k,outage:uplink:20s:2s")
		return MeasureE2EResilient(11, Facebook, netem.Constant(6e6), netem.Constant(10e6),
			30*time.Second, DegradeConfig{
				ArmFaults: func(clock *sim.Clock, upload *netem.Path) {
					plan.Apply(clock, upload)
				},
			})
	}
	a, b := measure(), measure()
	if a.Result != b.Result {
		t.Fatalf("results differ across identical seeds:\n%+v\n%+v", a.Result, b.Result)
	}
	if a.DegradedPieces != b.DegradedPieces || len(a.Transitions) != len(b.Transitions) {
		t.Fatalf("degradation accounting differs: %d/%d pieces, %d/%d transitions",
			a.DegradedPieces, b.DegradedPieces, len(a.Transitions), len(b.Transitions))
	}
}

package live

import (
	"time"

	"sperke/internal/hmp"
	"sperke/internal/netem"
	"sperke/internal/sim"
	"sperke/internal/sphere"
	"sperke/internal/tiling"
	"sperke/internal/trace"
)

// FoVLiveStats reports what FoV-guided live delivery (§3.4.2's closing
// integration: the live pipeline riding Sperke's tiling primitives)
// achieved for one viewer.
type FoVLiveStats struct {
	// FetchShare is the mean fraction of the panorama's tiles actually
	// downloaded.
	FetchShare float64
	// Coverage is the fraction of displayed segments whose actual FoV
	// was fully inside the fetched tile set — misses mean blank tiles.
	Coverage float64
	// Segments is the number of displayed segments measured.
	Segments int
}

// MeasureFoVGuidedLive runs one live viewer that fetches per-tile
// instead of whole panoramas: each segment downloads the tiles covering
// the viewer's current FoV plus one OOS ring, optionally widened by the
// crowd heatmap built from lower-latency viewers (§3.4.2). It returns
// the usual latency Result plus tile statistics.
func MeasureFoVGuidedLive(seed int64, p Platform, g tiling.Grid, proj sphere.Projection,
	fov sphere.FoV, head *trace.HeadTrace, heat *hmp.Heatmap,
	cond Condition, broadcastDur time.Duration) (Result, FoVLiveStats) {
	clock := sim.NewClock(seed)
	const propagation = 20 * time.Millisecond
	var upTrace, downTrace *netem.BandwidthTrace
	if cond.Up > 0 {
		upTrace = netem.Constant(cond.Up)
	}
	if cond.Down > 0 {
		downTrace = netem.Constant(cond.Down)
	}
	v := newViewerSim(clock, p, downTrace, propagation, broadcastDur)

	var stats FoVLiveStats
	var shareSum float64
	fetched := make(map[int]map[tiling.TileID]bool)

	tileSet := func(seg segment) map[tiling.TileID]bool {
		// Predict with the viewer's current orientation (live viewers
		// watch hands-free; short horizons are near-static) plus one OOS
		// ring; the crowd heatmap adds tiles lagging prediction misses.
		view := head.At(clock.Now())
		set := make(map[tiling.TileID]bool)
		visible := tiling.VisibleTiles(g, proj, view, fov)
		for _, id := range visible {
			set[id] = true
		}
		ring := tiling.Ring(g, visible, 1)
		if heat != nil && heat.Intervals() > 0 {
			// §3.2 pruning applied live: keep only the ring tiles the
			// crowd actually looks at, and add the crowd's favorites.
			for _, id := range ring {
				if heat.Probability(seg.contentStart, id) >= 0.05 {
					set[id] = true
				}
			}
			for _, id := range heat.TopTiles(seg.contentStart, 4) {
				set[id] = true
			}
		} else {
			for _, id := range ring {
				set[id] = true
			}
		}
		return set
	}

	v.sizeOf = func(seg segment, rate float64) int64 {
		set := tileSet(seg)
		fetched[seg.idx] = set
		share := float64(len(set)) / float64(g.Tiles())
		shareSum += share
		return int64(rate * p.SegmentDur.Seconds() / 8 * share)
	}
	v.onDisplay = func(seg segment, at time.Duration) {
		if at > broadcastDur {
			return
		}
		stats.Segments++
		set := fetched[seg.idx]
		covered := true
		for _, id := range tiling.VisibleTiles(g, proj, head.At(at), fov) {
			if !set[id] {
				covered = false
				break
			}
		}
		if covered {
			stats.Coverage++
		}
	}

	skips := runBroadcast(clock, p, upTrace, propagation, broadcastDur, []*viewerSim{v}, nil, nil, nil)
	res := v.finish()
	res.SkippedSegments = skips
	if n := len(fetched); n > 0 {
		stats.FetchShare = shareSum / float64(n)
	}
	if stats.Segments > 0 {
		stats.Coverage /= float64(stats.Segments)
	}
	return res, stats
}

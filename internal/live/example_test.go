package live_test

import (
	"fmt"
	"time"

	"sperke/internal/live"
)

// ExampleMeasureE2E reproduces one Table 2 cell: Facebook's
// unconstrained live E2E latency (the paper measures 9.2 s).
func ExampleMeasureE2E() {
	r := live.MeasureE2E(42, live.Facebook, live.Condition{}, 2*time.Minute)
	fmt.Printf("Facebook base E2E latency ≈ %.0f s\n", r.MeanLatency.Seconds())
	// Output:
	// Facebook base E2E latency ≈ 9 s
}

package live

import (
	"time"

	"sperke/internal/media"
	"sperke/internal/netem"
	"sperke/internal/obs"
	"sperke/internal/sim"
	"sperke/internal/transport"
)

// FallbackOpts applies an upload adaptation mode (§3.4.2) at the
// pipeline level: the broadcaster reduces what it sends whenever the
// configured uplink cannot carry the source rate.
type FallbackOpts struct {
	Mode UploadMode
	// Plan is the horizon uploaded under UploadSpatialFallback.
	Plan HorizonPlan
}

// Opts configures one Measure run. The zero value reproduces the
// paper's Table 2 protocol: a two-minute broadcast on constant links.
type Opts struct {
	// Duration of the broadcast; 0 defaults to 2 minutes (§3.4.1 runs
	// 2-minute experiments).
	Duration time.Duration
	// Cond supplies constant link rates (0 = unshaped).
	Cond Condition
	// UpTrace and DownTrace, when non-nil, override the corresponding
	// side of Cond with an explicit bandwidth schedule — chaos harnesses
	// pre-carve fault windows into traces.
	UpTrace, DownTrace *netem.BandwidthTrace
	// Degrade, when non-nil, activates the breaker-driven spatial
	// fallback: upload-piece timeouts trip the uplink breaker, degraded
	// pieces carry only the fallback horizon's share of the panorama,
	// and recovery restores the full 360°.
	Degrade *DegradeConfig
	// Fallback, when non-nil, applies a static upload adaptation mode:
	// spatial fallback shrinks each piece to the horizon's share,
	// quality reduction shrinks it to the uplink's share at full
	// horizon, fixed keeps today's drop-frames-when-behind behaviour.
	Fallback *FallbackOpts
}

// Measurement is one Measure run's outcome. Fields beyond the embedded
// Result are populated only when the corresponding option was set.
type Measurement struct {
	Result
	// DegradedPieces of TotalPieces were uploaded at the fallback
	// horizon's share (Opts.Degrade); Transitions is the uplink
	// breaker's state-change log.
	DegradedPieces, TotalPieces int
	Transitions                 []transport.BreakerTransition
	// UploadedFraction is the mean share of the panorama (spatial mode)
	// or of the source rate (quality mode) that went up the wire; 1
	// when no Fallback was configured or the uplink was sufficient.
	UploadedFraction float64
}

// Measure simulates one live broadcast under the given options and
// returns the latency statistics of Table 2 plus any fallback
// accounting. It is the single entry point behind the deprecated
// MeasureE2E, MeasureE2EResilient and MeasureE2EWithFallback wrappers,
// and runs the full pipeline either way:
//
//	camera → encoder → upload queue (drop beyond the app's cap) →
//	ingest → server re-encode → segment packaging → MPD poll or push →
//	download (with DASH adaptation where the platform offers it) →
//	viewer prebuffer → display
//
// Degrade and Fallback compose: Fallback first rescales the source
// rate for the static adaptation, then Degrade's breaker narrows
// pieces dynamically on top of it.
func Measure(seed int64, p Platform, o Opts) Measurement {
	const propagation = 20 * time.Millisecond
	dur := o.Duration
	if dur <= 0 {
		dur = 2 * time.Minute
	}
	m := Measurement{UploadedFraction: 1}
	if fb := o.Fallback; fb != nil {
		frac := 1.0
		if o.Cond.Up > 0 && o.Cond.Up < float64(p.IngestBitrate) {
			switch fb.Mode {
			case UploadSpatialFallback:
				frac = fb.Plan.Fraction()
			case UploadQualityReduce:
				// The re-encode is slightly below the link so it actually fits.
				frac = o.Cond.Up / float64(p.IngestBitrate) * 0.95
			}
		}
		if frac > 1 {
			frac = 1
		}
		p.IngestBitrate = media.Bitrate(float64(p.IngestBitrate) * frac)
		if p.IngestBitrate < 1 {
			p.IngestBitrate = 1
		}
		m.UploadedFraction = frac
	}
	upTrace, downTrace := o.UpTrace, o.DownTrace
	if upTrace == nil && o.Cond.Up > 0 {
		upTrace = netem.Constant(o.Cond.Up)
	}
	if downTrace == nil && o.Cond.Down > 0 {
		downTrace = netem.Constant(o.Cond.Down)
	}

	clock := sim.NewClock(seed)
	var deg *degrader
	var tracer *obs.Tracer
	var armFaults func(*sim.Clock, *netem.Path)
	if cfg := o.Degrade; cfg != nil {
		const pieceDur = 250 * time.Millisecond
		deadline := cfg.PieceDeadline
		if deadline <= 0 {
			deadline = 2 * pieceDur
		}
		plan := cfg.Plan
		if plan.SpanDeg <= 0 {
			plan.SpanDeg = 180
		}
		tracer = obs.NewTracer(cfg.Obs, clock)
		deg = &degrader{
			clock:    clock,
			br:       transport.NewBreaker(clock, cfg.Breaker),
			plan:     plan,
			deadline: deadline,
			obsReg:   cfg.Obs,
			tracer:   tracer,
		}
		deg.br.Obs = cfg.Obs
		armFaults = cfg.ArmFaults
	}
	v := newViewerSim(clock, p, downTrace, propagation, dur)
	if deg != nil {
		v.obsReg = deg.obsReg
		v.tracer = tracer
	}
	skips := runBroadcast(clock, p, upTrace, propagation, dur, []*viewerSim{v}, deg, tracer, armFaults)
	res := v.finish()
	res.SkippedSegments = skips
	m.Result = res
	if deg != nil {
		m.DegradedPieces = deg.degradedPieces
		m.TotalPieces = deg.totalPieces
		m.Transitions = deg.br.Transitions()
	}
	return m
}

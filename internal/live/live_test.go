package live

import (
	"math/rand"

	"sperke/internal/hmp"
	"testing"
	"time"

	"sperke/internal/sphere"
	"sperke/internal/tiling"
	"sperke/internal/trace"
)

func cell(t *testing.T, p Platform, cond Condition) Result {
	t.Helper()
	return MeasureE2E(42, p, cond, 2*time.Minute)
}

var unconstrained = Condition{Up: 0, Down: 0}

func TestBaseLatencyOrdering(t *testing.T) {
	// Table 2 row 1: Facebook < Periscope < YouTube, near 9.2/12.4/22.2s.
	fb := cell(t, Facebook, unconstrained)
	ps := cell(t, Periscope, unconstrained)
	yt := cell(t, YouTube, unconstrained)
	if !(fb.MeanLatency < ps.MeanLatency && ps.MeanLatency < yt.MeanLatency) {
		t.Fatalf("ordering: fb=%v ps=%v yt=%v", fb.MeanLatency, ps.MeanLatency, yt.MeanLatency)
	}
	within := func(got time.Duration, want float64) bool {
		return got.Seconds() > want*0.7 && got.Seconds() < want*1.3
	}
	if !within(fb.MeanLatency, 9.2) {
		t.Fatalf("Facebook base %v, want ≈9.2s", fb.MeanLatency)
	}
	if !within(ps.MeanLatency, 12.4) {
		t.Fatalf("Periscope base %v, want ≈12.4s", ps.MeanLatency)
	}
	if !within(yt.MeanLatency, 22.2) {
		t.Fatalf("YouTube base %v, want ≈22.2s", yt.MeanLatency)
	}
}

func TestBaseRunHasNoSkipsOrStalls(t *testing.T) {
	for _, p := range Platforms {
		r := cell(t, p, unconstrained)
		if r.SkippedSegments != 0 {
			t.Errorf("%s: %d skips on unconstrained network", p.Name, r.SkippedSegments)
		}
		if r.Samples == 0 {
			t.Errorf("%s: no samples", p.Name)
		}
	}
}

func TestConstrainedUplinkInflatesLatency(t *testing.T) {
	// Table 2 row 4 (0.5 Mbps up): every platform inflates strongly and
	// Periscope inflates most (53.4s in the paper).
	cond := Condition{Up: 0.5e6}
	var lat []time.Duration
	for _, p := range Platforms {
		base := cell(t, p, unconstrained)
		got := cell(t, p, cond)
		if got.MeanLatency < base.MeanLatency+3*time.Second {
			t.Errorf("%s: 0.5Mbps uplink barely moved latency: %v → %v", p.Name, base.MeanLatency, got.MeanLatency)
		}
		if got.SkippedSegments == 0 {
			t.Errorf("%s: no frame skips on a starved uplink", p.Name)
		}
		lat = append(lat, got.MeanLatency)
	}
	// Periscope (index 1) worst.
	if !(lat[1] > lat[0] && lat[1] > lat[2]) {
		t.Fatalf("Periscope not worst under uplink constraint: %v", lat)
	}
}

func TestMildUplinkConstraint(t *testing.T) {
	// Table 2 row 2 (2 Mbps up): YouTube (ingest below the cap) is flat;
	// Facebook rises slightly; Periscope rises more.
	cond := Condition{Up: 2e6}
	yt0, yt := cell(t, YouTube, unconstrained), cell(t, YouTube, cond)
	if d := (yt.MeanLatency - yt0.MeanLatency).Abs(); d > 2*time.Second {
		t.Fatalf("YouTube at 2Mbps up moved %v, want ≈flat", d)
	}
	ps0, ps := cell(t, Periscope, unconstrained), cell(t, Periscope, cond)
	fb0, fb := cell(t, Facebook, unconstrained), cell(t, Facebook, cond)
	psInfl := ps.MeanLatency - ps0.MeanLatency
	fbInfl := fb.MeanLatency - fb0.MeanLatency
	if psInfl <= fbInfl {
		t.Fatalf("Periscope inflation %v not above Facebook %v at 2Mbps up", psInfl, fbInfl)
	}
}

func TestConstrainedDownlinkAdaptationVsPush(t *testing.T) {
	// Table 2 rows 3/5: DASH platforms adapt the download quality; the
	// push platform cannot and suffers more at 2 Mbps down.
	cond := Condition{Down: 2e6}
	fb := cell(t, Facebook, cond)
	if fb.FinalQuality > 2e6 {
		t.Fatalf("Facebook did not adapt below the 2Mbps link: %v", fb.FinalQuality)
	}
	ps0, ps := cell(t, Periscope, unconstrained), cell(t, Periscope, cond)
	fb0 := cell(t, Facebook, unconstrained)
	if (ps.MeanLatency - ps0.MeanLatency) <= (fb.MeanLatency - fb0.MeanLatency) {
		t.Fatalf("push platform should inflate more than adaptive one at 2Mbps down")
	}
}

func TestSeverelyConstrainedDownlink(t *testing.T) {
	// Table 2 row 5 (0.5 Mbps down): YouTube's deep ladder (down to
	// 144p ≈ 0.2Mbps) recovers; Facebook's 720p floor cannot fit and
	// stalls accumulate.
	cond := Condition{Down: 0.5e6}
	yt := cell(t, YouTube, cond)
	fb := cell(t, Facebook, cond)
	if yt.FinalQuality > 0.5e6 {
		t.Fatalf("YouTube final quality %v does not fit the link", yt.FinalQuality)
	}
	if fb.MeanLatency <= yt.MeanLatency {
		t.Fatalf("Facebook (no low rung) %v should lag YouTube %v at 0.5Mbps down",
			fb.MeanLatency, yt.MeanLatency)
	}
	if fb.Stalls == 0 {
		t.Fatal("Facebook with a 1.5Mbps floor on a 0.5Mbps link never stalled")
	}
}

func TestMeasureDeterministic(t *testing.T) {
	a := MeasureE2E(7, Facebook, Condition{Up: 2e6}, time.Minute)
	b := MeasureE2E(7, Facebook, Condition{Up: 2e6}, time.Minute)
	if a != b {
		t.Fatalf("same-seed runs differ: %+v vs %+v", a, b)
	}
}

func TestTable2CellAggregates(t *testing.T) {
	r := Table2Cell(Facebook, unconstrained)
	if r.Samples == 0 || r.MeanLatency == 0 {
		t.Fatalf("empty aggregate %+v", r)
	}
	if r.MinLatency > r.MeanLatency || r.MeanLatency > r.MaxLatency {
		t.Fatalf("latency bounds inconsistent: %+v", r)
	}
}

func TestPlanHorizonUnconstrained(t *testing.T) {
	plan := PlanHorizon(nil, nil, 0, 1.5, 120)
	if plan.SpanDeg != 360 {
		t.Fatalf("unconstrained plan narrowed to %v°", plan.SpanDeg)
	}
}

func TestPlanHorizonNarrowsWithUplink(t *testing.T) {
	hint := sphere.Orientation{Yaw: 30}
	half := PlanHorizon(&hint, nil, 0, 0.5, 120)
	if half.SpanDeg != 180 {
		t.Fatalf("50%% uplink → span %v°, want 180", half.SpanDeg)
	}
	if half.Center.Yaw != 30 {
		t.Fatalf("manual hint ignored: center %v", half.Center)
	}
	// The floor holds: even a starved uplink keeps the stage visible.
	tiny := PlanHorizon(&hint, nil, 0, 0.1, 120)
	if tiny.SpanDeg != 120 {
		t.Fatalf("span floor violated: %v°", tiny.SpanDeg)
	}
}

func TestHorizonCovers(t *testing.T) {
	plan := HorizonPlan{Center: sphere.Orientation{Yaw: 0}, SpanDeg: 180}
	fov := sphere.FoV{Width: 100, Height: 90}
	if !plan.Covers(sphere.Orientation{Yaw: 0}, fov) {
		t.Fatal("center view not covered")
	}
	if !plan.Covers(sphere.Orientation{Yaw: 39}, fov) {
		t.Fatal("inside-edge view not covered")
	}
	if plan.Covers(sphere.Orientation{Yaw: 41}, fov) {
		t.Fatal("outside-edge view covered")
	}
	if plan.Covers(sphere.Orientation{Yaw: -180}, fov) {
		t.Fatal("behind view covered")
	}
	// A span narrower than the FoV covers nothing fully.
	slim := HorizonPlan{SpanDeg: 80}
	if slim.Covers(sphere.Orientation{}, fov) {
		t.Fatal("80° span cannot cover a 100° FoV")
	}
}

func TestSpatialFallbackBeatsQualityReduceWhenCrowdIsConcentrated(t *testing.T) {
	// E9: a concert-like crowd (95% looking at the stage ±40°) under a
	// 50% uplink: spatial fallback preserves full quality for nearly
	// everyone; quality reduction hits everyone.
	rng := rand.New(rand.NewSource(5))
	var views []sphere.Orientation
	for i := 0; i < 200; i++ {
		yaw := rng.NormFloat64() * 20
		if rng.Float64() < 0.05 {
			yaw = rng.Float64()*360 - 180 // a few wanderers
		}
		views = append(views, sphere.Orientation{Yaw: yaw}.Normalized())
	}
	fov := sphere.DefaultFoV
	hint := sphere.Orientation{}
	plan := PlanHorizon(&hint, nil, 0, 0.5, 160)
	sf := EvaluateFallback(UploadSpatialFallback, plan, 0.5, views, fov)
	qr := EvaluateFallback(UploadQualityReduce, plan, 0.5, views, fov)
	fx := EvaluateFallback(UploadFixed, plan, 0.5, views, fov)
	if sf.MeanFoVQuality <= qr.MeanFoVQuality {
		t.Fatalf("spatial fallback %0.2f not above quality-reduce %0.2f", sf.MeanFoVQuality, qr.MeanFoVQuality)
	}
	if fx.SkippedFrac < 0.4 {
		t.Fatalf("fixed mode skipped only %.2f at 50%% uplink", fx.SkippedFrac)
	}
}

func TestSpatialFallbackLosesWhenCrowdIsDispersed(t *testing.T) {
	// The trade-off is real: with viewers spread over the full sphere,
	// narrowing the horizon blanks many of them and quality reduction
	// wins — which is why the horizon decision needs the crowd signal.
	rng := rand.New(rand.NewSource(6))
	var views []sphere.Orientation
	for i := 0; i < 200; i++ {
		views = append(views, sphere.Orientation{Yaw: rng.Float64()*360 - 180}.Normalized())
	}
	plan := PlanHorizon(nil, nil, 0, 0.5, 160)
	sf := EvaluateFallback(UploadSpatialFallback, plan, 0.5, views, sphere.DefaultFoV)
	qr := EvaluateFallback(UploadQualityReduce, plan, 0.5, views, sphere.DefaultFoV)
	if sf.MeanFoVQuality >= qr.MeanFoVQuality {
		t.Fatalf("dispersed crowd: spatial %0.2f should lose to quality-reduce %0.2f",
			sf.MeanFoVQuality, qr.MeanFoVQuality)
	}
}

func TestUploadModeString(t *testing.T) {
	if UploadFixed.String() != "fixed" || UploadQualityReduce.String() != "quality-reduce" ||
		UploadSpatialFallback.String() != "spatial-fallback" {
		t.Fatal("bad mode strings")
	}
}

func makeLiveViewers(t *testing.T, n int, dur time.Duration) ([]Viewer, *trace.Attention) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	att := trace.GenerateAttention(rand.New(rand.NewSource(18)), dur)
	pop := trace.NewPopulation(rng, n)
	traces := pop.Sessions(rng, att, dur)
	viewers := make([]Viewer, n)
	for i := range viewers {
		// Latencies spread like Table 2's variance: 8–40 s.
		viewers[i] = Viewer{
			Trace:   traces[i],
			Latency: time.Duration(8+rng.Float64()*32) * time.Second,
		}
	}
	return viewers, att
}

func TestCrowdLivePredictorUsesOnlyAheadViewers(t *testing.T) {
	viewers, _ := makeLiveViewers(t, 10, 30*time.Second)
	pred := &CrowdLivePredictor{Ahead: viewers, TargetLatency: 0}
	if _, ok := pred.PredictContent(10 * time.Second); ok {
		t.Fatal("predictor used viewers that are not ahead")
	}
	pred.TargetLatency = time.Hour
	if _, ok := pred.PredictContent(10 * time.Second); !ok {
		t.Fatal("predictor found no ahead viewers despite all being ahead")
	}
}

func TestCrowdLiveHMPBeatsStaticAtLongHorizon(t *testing.T) {
	// E10: for a high-latency viewer needing a long prefetch horizon,
	// the reactions of low-latency viewers predict better than assuming
	// the head stays put.
	const dur = 60 * time.Second
	viewers, att := makeLiveViewers(t, 14, dur)
	// Target: a fresh viewer with the highest latency.
	rng := rand.New(rand.NewSource(77))
	target := Viewer{
		Trace:   trace.Generate(rng, trace.UserProfile{ID: "lagger", SpeedScale: 1}, att, dur),
		Latency: 45 * time.Second,
	}
	pred := &CrowdLivePredictor{Ahead: viewers, TargetLatency: target.Latency}
	rep := LiveHMPAccuracy(pred, target, sphere.DefaultFoV, dur, 3*time.Second)
	// Heads mostly fixate, so the static baseline is strong overall; the
	// crowd's value is recovering the samples where the head actually
	// moved — the exact failures FoV-guided prefetch suffers.
	if rep.MovedFrac <= 0 {
		t.Fatal("target never moved; test scenario degenerate")
	}
	if rep.CrowdRecovery < 0.2 {
		t.Fatalf("crowd recovered only %.2f of static misses", rep.CrowdRecovery)
	}
	if rep.CrowdHit < 0.35 {
		t.Fatalf("crowd hit rate %.2f implausibly low", rep.CrowdHit)
	}
}

func TestLiveHeatmapBuilds(t *testing.T) {
	viewers, _ := makeLiveViewers(t, 6, 20*time.Second)
	h := LiveHeatmap(tilingGrid(), sphere.Equirectangular{}, sphere.DefaultFoV,
		2*time.Second, 20*time.Second, viewers)
	if h.Intervals() != 10 {
		t.Fatalf("intervals = %d", h.Intervals())
	}
}

func tilingGrid() tiling.Grid { return tiling.GridCellular }

func TestMeasureViewersHeterogeneousLatency(t *testing.T) {
	// The §3.4.2 premise: viewers behind different downlinks experience
	// different E2E latencies, with high variance across the population.
	downs := []float64{0, 8e6, 3e6, 1.8e6, 1.6e6}
	results := MeasureViewers(42, Facebook, 0, downs, 2*time.Minute)
	if len(results) != len(downs) {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Samples == 0 {
			t.Fatalf("viewer %d displayed nothing", i)
		}
	}
	// The unconstrained viewer must beat the 1.6 Mbps one (who cannot
	// even carry Facebook's 1.5 Mbps floor comfortably).
	if results[0].MeanLatency >= results[4].MeanLatency {
		t.Fatalf("fast viewer %v not ahead of slow viewer %v",
			results[0].MeanLatency, results[4].MeanLatency)
	}
	spread := Spread(results)
	if spread.Max <= spread.Min {
		t.Fatal("no latency spread across heterogeneous viewers")
	}
	if spread.StdDev < 200*time.Millisecond {
		t.Fatalf("stddev %v — population too homogeneous for the §3.4.2 premise", spread.StdDev)
	}
	if spread.Mean < spread.Min || spread.Mean > spread.Max {
		t.Fatalf("spread inconsistent: %+v", spread)
	}
}

func TestMeasureViewersSharedUplinkState(t *testing.T) {
	// All viewers watch the same broadcast: broadcaster-side skips are
	// identical across the population.
	results := MeasureViewers(7, Facebook, 0.5e6, []float64{0, 0}, time.Minute)
	if results[0].SkippedSegments != results[1].SkippedSegments {
		t.Fatal("viewers disagree about broadcaster skips")
	}
	if results[0].SkippedSegments == 0 {
		t.Fatal("starved uplink produced no skips")
	}
}

func TestSpreadEmpty(t *testing.T) {
	if s := Spread(nil); s.Mean != 0 || s.StdDev != 0 {
		t.Fatalf("empty spread %+v", s)
	}
}

func TestMeasureViewersMatchesSingleViewer(t *testing.T) {
	// A population of one behaves exactly like MeasureE2E.
	single := MeasureE2E(42, YouTube, Condition{Down: 2e6}, time.Minute)
	pop := MeasureViewers(42, YouTube, 0, []float64{2e6}, time.Minute)
	if len(pop) != 1 {
		t.Fatal("population size")
	}
	got := pop[0]
	if got.MeanLatency != single.MeanLatency || got.Samples != single.Samples ||
		got.Stalls != single.Stalls || got.BytesDownloaded != single.BytesDownloaded {
		t.Fatalf("population-of-one diverged:\n%+v\n%+v", got, single)
	}
}

func TestFoVGuidedLiveSavesBandwidthAndCovers(t *testing.T) {
	// §3.4.2's integration claim: live broadcast benefits from the
	// tiling primitives — a FoV-guided live viewer downloads a fraction
	// of the panorama while still covering what they look at.
	const dur = 2 * time.Minute
	g := tiling.GridCellular
	proj := sphere.Equirectangular{}
	att := trace.GenerateAttention(rand.New(rand.NewSource(61)), dur)
	head := trace.Generate(rand.New(rand.NewSource(62)),
		trace.UserProfile{ID: "v", SpeedScale: 1}, att, dur)
	// Crowd heat from earlier viewers of the same broadcast.
	pop := trace.NewPopulation(rand.New(rand.NewSource(63)), 8)
	sessions := pop.Sessions(rand.New(rand.NewSource(64)), att, dur)
	heat := hmp.BuildHeatmap(g, proj, sphere.DefaultFoV, Facebook.SegmentDur, dur, sessions)

	full := MeasureE2E(42, Facebook, unconstrained, dur)
	guided, stats := MeasureFoVGuidedLive(42, Facebook, g, proj, sphere.DefaultFoV,
		head, heat, unconstrained, dur)

	if stats.Segments == 0 {
		t.Fatal("no segments measured")
	}
	if stats.FetchShare <= 0.2 || stats.FetchShare >= 0.95 {
		t.Fatalf("fetch share %.2f outside the plausible FoV+ring band", stats.FetchShare)
	}
	if guided.BytesDownloaded >= full.BytesDownloaded {
		t.Fatalf("guided live downloaded %d ≥ full panorama %d",
			guided.BytesDownloaded, full.BytesDownloaded)
	}
	if stats.Coverage < 0.85 {
		t.Fatalf("FoV coverage %.2f — guided live blanks too often", stats.Coverage)
	}
	// Latency character unchanged: same pipeline, smaller payloads.
	if guided.MeanLatency > full.MeanLatency+2*time.Second {
		t.Fatalf("guided live latency %v far above full %v", guided.MeanLatency, full.MeanLatency)
	}
}

func TestFoVGuidedLiveCrowdWidensCoverage(t *testing.T) {
	const dur = time.Minute
	g := tiling.GridCellular
	proj := sphere.Equirectangular{}
	att := trace.GenerateAttention(rand.New(rand.NewSource(71)), dur)
	// A fast-moving viewer: own-view prediction misses more; the crowd
	// tiles recover some coverage.
	head := trace.Generate(rand.New(rand.NewSource(72)),
		trace.UserProfile{ID: "fast", SpeedScale: 2.0}, att, dur)
	pop := trace.NewPopulation(rand.New(rand.NewSource(73)), 10)
	sessions := pop.Sessions(rand.New(rand.NewSource(74)), att, dur)
	heat := hmp.BuildHeatmap(g, proj, sphere.DefaultFoV, Facebook.SegmentDur, dur, sessions)

	_, with := MeasureFoVGuidedLive(7, Facebook, g, proj, sphere.DefaultFoV, head, heat, unconstrained, dur)
	_, without := MeasureFoVGuidedLive(7, Facebook, g, proj, sphere.DefaultFoV, head, nil, unconstrained, dur)
	// Crowd pruning trims the blind OOS ring while its favorites keep
	// coverage from collapsing.
	if with.FetchShare >= without.FetchShare {
		t.Fatalf("crowd pruning did not trim the fetch share: %.2f vs %.2f",
			with.FetchShare, without.FetchShare)
	}
	if with.Coverage < without.Coverage-0.12 {
		t.Fatalf("crowd pruning collapsed coverage: %.2f vs %.2f", with.Coverage, without.Coverage)
	}
}

func TestSpatialFallbackInPipeline(t *testing.T) {
	// E9 mechanized: on a halved uplink, spatial fall-back (uploading a
	// 180° horizon at full quality) eliminates the frame skips the fixed
	// mode suffers and keeps latency near base.
	cond := Condition{Up: 1.2e6} // ≈55% of Facebook's 2.2 Mbps ingest
	plan := PlanHorizon(nil, nil, 0, 1.2e6/float64(Facebook.IngestBitrate), 160)

	fixed := MeasureE2EWithFallback(42, Facebook, cond, 2*time.Minute, UploadFixed, plan)
	spatial := MeasureE2EWithFallback(42, Facebook, cond, 2*time.Minute, UploadSpatialFallback, plan)
	quality := MeasureE2EWithFallback(42, Facebook, cond, 2*time.Minute, UploadQualityReduce, plan)

	if fixed.Result.SkippedSegments == 0 {
		t.Fatal("fixed mode skipped nothing on a starved uplink")
	}
	if spatial.Result.SkippedSegments >= fixed.Result.SkippedSegments {
		t.Fatalf("spatial fallback skips %d ≥ fixed %d",
			spatial.Result.SkippedSegments, fixed.Result.SkippedSegments)
	}
	if quality.Result.SkippedSegments >= fixed.Result.SkippedSegments {
		t.Fatalf("quality reduction skips %d ≥ fixed %d",
			quality.Result.SkippedSegments, fixed.Result.SkippedSegments)
	}
	// Both adaptive modes keep latency near base; fixed inflates.
	base := MeasureE2E(42, Facebook, Condition{}, 2*time.Minute)
	if spatial.Result.MeanLatency > base.MeanLatency+4*time.Second {
		t.Fatalf("spatial fallback latency %v far above base %v",
			spatial.Result.MeanLatency, base.MeanLatency)
	}
	if fixed.Result.MeanLatency <= spatial.Result.MeanLatency {
		t.Fatalf("fixed latency %v not above spatial %v",
			fixed.Result.MeanLatency, spatial.Result.MeanLatency)
	}
	// Spatial uploads a horizon share; quality uploads everything thinner.
	if spatial.UploadedFraction <= 0.3 || spatial.UploadedFraction >= 0.9 {
		t.Fatalf("spatial uploaded fraction %.2f implausible", spatial.UploadedFraction)
	}
}

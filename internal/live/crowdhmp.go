package live

import (
	"time"

	"sperke/internal/hmp"
	"sperke/internal/sphere"
	"sperke/internal/tiling"
	"sperke/internal/trace"
)

// Viewer is one live viewer: their head trace over the broadcast and
// the E2E latency they experience. Latency heterogeneity across viewers
// is exactly what §3.4.2 exploits: low-latency viewers see a scene
// seconds before high-latency viewers do, so their head movements are a
// prophecy for everyone behind them.
type Viewer struct {
	Trace *trace.HeadTrace
	// Latency is the viewer's E2E latency: at wall time t they display
	// scene content t − Latency.
	Latency time.Duration
}

// viewAtContent returns where the viewer was looking when the given
// content time played for them.
func (v Viewer) viewAtContent(content time.Duration) sphere.Orientation {
	// The viewer displays content c at wall time c + Latency; their head
	// trace is indexed by their own playback time, which equals content
	// time (they watch the stream continuously from its start).
	return v.Trace.At(content)
}

// CrowdLivePredictor predicts a high-latency viewer's FoV from the
// head movements low-latency viewers exhibited when they watched the
// same scene moments earlier (§3.4.2).
type CrowdLivePredictor struct {
	// Ahead are the viewers with lower latency than the target.
	Ahead []Viewer
	// TargetLatency is the target viewer's E2E latency.
	TargetLatency time.Duration
}

// PredictContent returns the crowd's mean view direction for the given
// content time, computed only from viewers who have already displayed
// that content at the target's wall clock — i.e. those with strictly
// lower latency. ok is false when no viewer is far enough ahead.
func (c *CrowdLivePredictor) PredictContent(content time.Duration) (sphere.Orientation, bool) {
	var sum sphere.Vec3
	n := 0
	for _, v := range c.Ahead {
		if v.Latency >= c.TargetLatency {
			continue // not actually ahead
		}
		d := v.viewAtContent(content).Direction()
		sum.X += d.X
		sum.Y += d.Y
		sum.Z += d.Z
		n++
	}
	if n == 0 {
		return sphere.Orientation{}, false
	}
	return sphere.FromDirection(sum), true
}

// LiveHMPReport compares crowd-sourced live prediction against the
// static (keep-looking-here) baseline for one high-latency viewer.
type LiveHMPReport struct {
	// CrowdHit and StaticHit are overall FoV hit rates at the horizon.
	CrowdHit, StaticHit float64
	// CrowdRecovery is the crowd hit rate restricted to the samples
	// where the static baseline missed — the head actually moved. These
	// are exactly the cases FoV-guided prefetch fails without external
	// intelligence, and where the §3.4.2 crowd signal pays off.
	CrowdRecovery float64
	// MovedFrac is the fraction of samples where static missed.
	MovedFrac float64
}

// LiveHMPAccuracy evaluates one high-latency target viewer over the
// whole broadcast. horizon is the prefetch horizon: how far ahead of
// the target's playhead chunks must be requested.
func LiveHMPAccuracy(pred *CrowdLivePredictor, target Viewer, fov sphere.FoV,
	dur, horizon time.Duration) LiveHMPReport {
	const step = 250 * time.Millisecond
	var crowd, static, total, moved, recovered int
	for content := time.Second; content+horizon < dur; content += step {
		// At decision time the target displays `content`; we must
		// predict their view at content+horizon.
		actual := target.viewAtContent(content + horizon)
		crowdHit := false
		if cv, ok := pred.PredictContent(content + horizon); ok {
			crowdHit = sphere.AngularDistance(cv, actual) <= fov.Width/2
		}
		staticHit := sphere.AngularDistance(target.viewAtContent(content), actual) <= fov.Width/2
		if crowdHit {
			crowd++
		}
		if staticHit {
			static++
		} else {
			moved++
			if crowdHit {
				recovered++
			}
		}
		total++
	}
	var rep LiveHMPReport
	if total == 0 {
		return rep
	}
	rep.CrowdHit = float64(crowd) / float64(total)
	rep.StaticHit = float64(static) / float64(total)
	rep.MovedFrac = float64(moved) / float64(total)
	if moved > 0 {
		rep.CrowdRecovery = float64(recovered) / float64(moved)
	}
	return rep
}

// LiveHeatmap builds a tile heatmap from the ahead-viewers' reactions
// for FoV-guided delivery to lagging viewers: the live analogue of the
// §3.2 crowd heatmap, with content time as the index.
func LiveHeatmap(g tiling.Grid, p sphere.Projection, fov sphere.FoV,
	chunkDur, dur time.Duration, ahead []Viewer) *hmp.Heatmap {
	traces := make([]*trace.HeadTrace, len(ahead))
	for i, v := range ahead {
		traces[i] = v.Trace
	}
	return hmp.BuildHeatmap(g, p, fov, chunkDur, dur, traces)
}

package live

import (
	"fmt"
	"math"
	"time"

	"sperke/internal/netem"
	"sperke/internal/obs"
	"sperke/internal/sim"
	"sperke/internal/transport"
)

// Result summarizes one simulated broadcast, reproducing the paper's
// measurement protocol: the broadcaster films a clock (T1), the viewer
// displays it (T2), and E2E latency is T2−T1 (§3.4.1).
type Result struct {
	// MeanLatency is the average E2E latency across displayed segments.
	MeanLatency time.Duration
	// MinLatency and MaxLatency bound the per-segment samples.
	MinLatency, MaxLatency time.Duration
	// Samples is the number of displayed segments measured.
	Samples int
	// SkippedSegments counts broadcaster-side frame drops (upload queue
	// overflow).
	SkippedSegments int
	// Stalls counts viewer-side rebuffering events.
	Stalls int
	// FinalQuality is the download rate (bits/s) the viewer ended on.
	FinalQuality float64
	// BytesDownloaded is the viewer-side wire usage.
	BytesDownloaded int64
}

func (r Result) String() string {
	return fmt.Sprintf("mean=%.1fs (min %.1f, max %.1f, n=%d) skips=%d stalls=%d",
		r.MeanLatency.Seconds(), r.MinLatency.Seconds(), r.MaxLatency.Seconds(),
		r.Samples, r.SkippedSegments, r.Stalls)
}

// segment is one packaged piece of the live stream inside the
// simulation.
type segment struct {
	idx int
	// contentStart is the wall time the segment's first scene appeared
	// (capture is live, so content time == wall time at the camera).
	contentStart time.Duration
	bytes        int64
}

// viewerSim is one viewer's half of the pipeline: MPD polling (or push
// reception), serialized downloads with DASH adaptation, prebuffering,
// playback, and latency sampling.
type viewerSim struct {
	clock        *sim.Clock
	p            Platform
	download     *netem.Path
	broadcastDur time.Duration

	est         *netem.EWMA
	buffered    []segment
	stalled     bool
	started     bool
	fetchQueue  []segment
	fetching    bool
	fetchedUpTo int

	res Result
	// latSum accumulates per-segment latency until finish() divides it.
	latSum time.Duration

	// sizeOf, when set, computes a segment's download bytes from the
	// chosen rate — FoV-guided viewers fetch only a tile subset. nil
	// means the whole panorama (rate × segment duration).
	sizeOf func(seg segment, rate float64) int64
	// onDisplay, when set, observes each segment as it starts playing.
	onDisplay func(seg segment, at time.Duration)

	// obsReg and tracer, when set, record per-segment E2E latency
	// (live.e2e_ms), rebuffer events, and fetch-stage spans. Both are
	// nil-safe no-ops by default.
	obsReg *obs.Registry
	tracer *obs.Tracer
}

func newViewerSim(clock *sim.Clock, p Platform, downTrace *netem.BandwidthTrace,
	propagation, broadcastDur time.Duration) *viewerSim {
	v := &viewerSim{
		clock:        clock,
		p:            p,
		download:     netem.NewPath(clock, "downlink", downTrace, propagation, 0),
		broadcastDur: broadcastDur,
		est:          &netem.EWMA{Alpha: 0.4},
	}
	v.res.MinLatency = time.Duration(1<<62 - 1)
	v.est.Add(1e6) // conservative startup estimate, as real players use
	return v
}

// chooseRate picks the download rate: DASH platforms adapt to the
// estimate; push platforms relay the source rate.
func (v *viewerSim) chooseRate() float64 {
	if len(v.p.DownLadder) == 0 {
		return float64(v.p.IngestBitrate)
	}
	budget := v.est.Estimate() * 0.8
	rate := float64(v.p.DownLadder[0])
	for _, r := range v.p.DownLadder {
		if float64(r) <= budget {
			rate = float64(r)
		}
	}
	return rate
}

func (v *viewerSim) playNext() {
	if len(v.buffered) == 0 {
		v.stalled = true
		return
	}
	seg := v.buffered[0]
	v.buffered = v.buffered[1:]
	if v.onDisplay != nil {
		v.onDisplay(seg, v.clock.Now())
	}
	v.obsReg.Histogram("live.e2e_ms").Observe(
		float64(v.clock.Now()-seg.contentStart) / float64(time.Millisecond))
	// Only displays inside the broadcast window count: the paper's
	// measurement stops when the broadcast does, so badly lagging
	// pipelines contribute their in-window samples only.
	if lat := v.clock.Now() - seg.contentStart; v.clock.Now() <= v.broadcastDur {
		v.res.Samples++
		if lat < v.res.MinLatency {
			v.res.MinLatency = lat
		}
		if lat > v.res.MaxLatency {
			v.res.MaxLatency = lat
		}
		v.latSum += lat
	}
	v.clock.Schedule(v.clock.Now()+v.p.SegmentDur, v.playNext)
}

func (v *viewerSim) bufferedMedia() time.Duration {
	return time.Duration(len(v.buffered)) * v.p.SegmentDur
}

func (v *viewerSim) onSegmentDownloaded(seg segment) {
	v.buffered = append(v.buffered, seg)
	if !v.started {
		if v.bufferedMedia() >= v.p.Prebuffer || seg.contentStart+v.p.SegmentDur >= v.broadcastDur {
			v.started = true
			v.playNext()
		}
		return
	}
	if v.stalled {
		v.stalled = false
		v.res.Stalls++
		v.obsReg.Counter("live.viewer.rebuffers").Inc()
		v.playNext()
	}
}

// pumpFetch keeps one segment request in flight so each quality
// decision sees a fresh throughput estimate (pull platforms).
func (v *viewerSim) pumpFetch() {
	if v.fetching || len(v.fetchQueue) == 0 {
		return
	}
	seg := v.fetchQueue[0]
	v.fetchQueue = v.fetchQueue[1:]
	v.fetching = true
	rate := v.chooseRate()
	v.res.FinalQuality = rate
	bytes := int64(rate * v.p.SegmentDur.Seconds() / 8)
	if v.sizeOf != nil {
		bytes = v.sizeOf(seg, rate)
	}
	sp := v.tracer.Start(obs.StageFetch)
	v.download.Transfer(bytes, netem.Reliable, func(d netem.Delivery) {
		sp.End()
		v.est.Add(d.Throughput())
		v.res.BytesDownloaded += d.Bytes
		v.fetching = false
		v.onSegmentDownloaded(seg)
		v.pumpFetch()
	})
}

// fetch requests one segment: queued for pull platforms, written at
// source rate for push platforms (no client-side control).
func (v *viewerSim) fetch(seg segment) {
	if !v.p.PullBased {
		rate := v.chooseRate()
		v.res.FinalQuality = rate
		bytes := int64(rate * v.p.SegmentDur.Seconds() / 8)
		sp := v.tracer.Start(obs.StageFetch)
		v.download.Transfer(bytes, netem.Reliable, func(d netem.Delivery) {
			sp.End()
			v.res.BytesDownloaded += d.Bytes
			v.onSegmentDownloaded(seg)
		})
		return
	}
	v.fetchQueue = append(v.fetchQueue, seg)
	v.pumpFetch()
}

// startPolling arms the pull viewer's MPD refresh loop over the shared
// availability list.
func (v *viewerSim) startPolling(available *[]segment) {
	var poll func()
	poll = func() {
		for _, seg := range *available {
			if seg.idx >= v.fetchedUpTo {
				v.fetchedUpTo = seg.idx + 1
				v.fetch(seg)
			}
		}
		if v.clock.Now() < v.broadcastDur+2*time.Minute {
			v.clock.After(v.p.PollInterval, poll)
		}
	}
	v.clock.After(v.p.PollInterval/2, poll)
}

// finish closes out the viewer's result.
func (v *viewerSim) finish() Result {
	r := v.res
	if r.Samples > 0 {
		r.MeanLatency = v.latSum / time.Duration(r.Samples)
	} else {
		r.MinLatency = 0
	}
	return r
}

// DegradeConfig wires a circuit breaker between the uplink and the
// spatial fallback of §3.4.2: consecutive upload-piece timeouts trip
// the breaker, and while it is not closed the broadcaster uploads only
// the Plan's horizon share of the panorama, so an outage downgrades
// quality rather than stalling the broadcast.
type DegradeConfig struct {
	// Breaker tunes the uplink breaker (zero = defaults).
	Breaker transport.BreakerConfig
	// Plan is the horizon uploaded while degraded.
	Plan HorizonPlan
	// PieceDeadline is the upload time beyond which a piece counts as a
	// breaker failure; 0 defaults to 2× the piece duration.
	PieceDeadline time.Duration
	// ArmFaults, when set, runs with the clock and the upload path
	// before the broadcast starts — the hook fault plans attach through.
	ArmFaults func(clock *sim.Clock, upload *netem.Path)
	// Obs, when set, records the run's pipeline metrics against the sim
	// clock: per-stage spans (span.{encode,upload,transcode,fetch}_ms),
	// the live.e2e_ms latency histogram, breaker transition counters,
	// and fallback activation/degraded-piece counts. Nil disables
	// metrics.
	Obs *obs.Registry
}

// degrader applies a DegradeConfig inside runBroadcast: a watchdog per
// upload piece reports timeouts to the breaker (an uploader detects a
// stalled path by timeout, not by waiting for completion), and the
// steady piece stream doubles as the half-open probe traffic.
type degrader struct {
	clock    *sim.Clock
	br       *transport.Breaker
	plan     HorizonPlan
	deadline time.Duration

	obsReg *obs.Registry
	tracer *obs.Tracer

	degradedPieces, totalPieces int
	wasDegraded                 bool
}

// pieceBytes shrinks a piece to the horizon's share while the breaker
// is not closed.
func (dg *degrader) pieceBytes(full int64) int64 {
	dg.totalPieces++
	if dg.br.State() == transport.BreakerClosed {
		dg.wasDegraded = false
		return full
	}
	if !dg.wasDegraded {
		// One activation per contiguous degraded stretch, not per piece.
		dg.wasDegraded = true
		dg.obsReg.Counter("live.fallback.activations").Inc()
	}
	dg.degradedPieces++
	dg.obsReg.Counter("live.fallback.degraded_pieces").Inc()
	b := int64(float64(full) * dg.plan.Fraction())
	if b < 1 {
		b = 1
	}
	return b
}

// watch submits the transfer with a timeout watchdog attached and
// reports the outcome to the breaker exactly once.
func (dg *degrader) watch(upload *netem.Path, bytes int64, landed func(netem.Delivery)) {
	submitted := dg.clock.Now()
	sp := dg.tracer.Start(obs.StageUpload)
	reported := false
	watchdog := dg.clock.After(dg.deadline, func() {
		reported = true
		dg.br.OnFailure()
	})
	upload.Transfer(bytes, netem.Reliable, func(d netem.Delivery) {
		sp.End()
		watchdog.Cancel()
		if !reported {
			if d.OK && d.Done-submitted <= dg.deadline {
				dg.br.OnSuccess()
			} else {
				dg.br.OnFailure()
			}
		}
		landed(d)
	})
}

// ResilientRun reports a broadcast run with breaker-driven spatial
// fallback active.
type ResilientRun struct {
	Result Result
	// DegradedPieces of TotalPieces were uploaded at the fallback
	// horizon's share rather than the full panorama.
	DegradedPieces, TotalPieces int
	// Transitions is the uplink breaker's state-change log; chaos tests
	// assert it opens and re-closes across an outage.
	Transitions []transport.BreakerTransition
}

// runBroadcast drives one broadcast with the given viewers attached and
// returns the broadcaster-side skip count.
//
// RTMP streams frames continuously as the encoder emits them, not in
// segment-sized bursts: the upload is modeled as 250 ms pieces, and the
// server assembles them into segments. When the uplink cannot drain the
// encoder's rate, the app's queue grows up to its cap and then drops
// frames — the "degraded video quality exhibiting stall and frame
// skips" of §3.4.1.
func runBroadcast(clock *sim.Clock, p Platform, upTrace *netem.BandwidthTrace,
	propagation, broadcastDur time.Duration, viewers []*viewerSim, deg *degrader,
	tracer *obs.Tracer, armFaults func(*sim.Clock, *netem.Path)) (skips int) {
	upload := netem.NewPath(clock, "uplink", upTrace, propagation, 0)
	if armFaults != nil {
		armFaults(clock, upload)
	}

	var available []segment
	onIngest := func(seg segment) {
		ingestAt := clock.Now()
		clock.After(p.ReencodeDelay, func() {
			tracer.Record(obs.StageTranscode, ingestAt, clock.Now())
			available = append(available, seg)
			if !p.PullBased {
				for _, v := range viewers {
					v.fetch(seg)
				}
			}
		})
	}
	if p.PullBased {
		for _, v := range viewers {
			v.startPolling(&available)
		}
	}

	const pieceDur = 250 * time.Millisecond
	piecesPerSeg := int(p.SegmentDur / pieceDur)
	if piecesPerSeg < 1 {
		piecesPerSeg = 1
	}
	nSegs := int(broadcastDur / p.SegmentDur)
	queuedMedia := time.Duration(0)
	arrived := make([]int, nSegs)
	degraded := make([]bool, nSegs)

	pieceLanded := func(segIdx int) {
		arrived[segIdx]++
		if arrived[segIdx] == piecesPerSeg {
			if degraded[segIdx] {
				skips++
			}
			onIngest(segment{
				idx:          segIdx,
				contentStart: time.Duration(segIdx) * p.SegmentDur,
				bytes:        p.IngestBitrate.BytesIn(p.SegmentDur),
			})
		}
	}
	for j := 0; j < nSegs*piecesPerSeg; j++ {
		segIdx := j / piecesPerSeg
		readyAt := time.Duration(j+1)*pieceDur + p.EncodeDelay
		clock.Schedule(readyAt, func() {
			// The encoder held this piece for EncodeDelay before it became
			// ready — recorded retroactively since the sim has no explicit
			// encoder event.
			tracer.Record(obs.StageEncode, readyAt-p.EncodeDelay, readyAt)
			if queuedMedia > p.UploadQueueCap {
				degraded[segIdx] = true
				pieceLanded(segIdx)
				return
			}
			queuedMedia += pieceDur
			bytes := p.IngestBitrate.BytesIn(pieceDur)
			landed := func(netem.Delivery) {
				queuedMedia -= pieceDur
				pieceLanded(segIdx)
			}
			if deg != nil {
				// Spatial fallback is not a skip: the degraded piece still
				// uploads (narrower horizon), so the segment stays whole.
				deg.watch(upload, deg.pieceBytes(bytes), landed)
				return
			}
			upload.Transfer(bytes, netem.Reliable, landed)
		})
	}
	clock.Run()
	return skips
}

// MeasureE2E simulates one broadcast of the given duration on a
// platform under a network condition and returns the latency
// statistics of Table 2.
//
// Deprecated: use Measure with Opts{Duration, Cond}; this wrapper
// remains for existing experiment call sites.
func MeasureE2E(seed int64, p Platform, cond Condition, broadcastDur time.Duration) Result {
	return Measure(seed, p, Opts{Duration: broadcastDur, Cond: cond}).Result
}

// MeasureE2EResilient simulates one broadcast with the breaker-driven
// spatial fallback active. Traces are passed directly (rather than a
// Condition) so chaos harnesses can pre-carve fault windows into them,
// and cfg.ArmFaults can attach a fault plan to the upload path itself.
//
// Deprecated: use Measure with Opts{UpTrace, DownTrace, Degrade}.
func MeasureE2EResilient(seed int64, p Platform, upTrace, downTrace *netem.BandwidthTrace,
	broadcastDur time.Duration, cfg DegradeConfig) ResilientRun {
	m := Measure(seed, p, Opts{
		Duration: broadcastDur,
		UpTrace:  upTrace, DownTrace: downTrace,
		Degrade: &cfg,
	})
	return ResilientRun{
		Result:         m.Result,
		DegradedPieces: m.DegradedPieces,
		TotalPieces:    m.TotalPieces,
		Transitions:    m.Transitions,
	}
}

// MeasureViewers runs one broadcast with a population of viewers, each
// behind its own downlink, and returns per-viewer results. The latency
// heterogeneity across viewers is the raw material of §3.4.2's
// crowd-sourced live HMP ("the E2E latency across users will likely
// exhibit high variance").
func MeasureViewers(seed int64, p Platform, upBPS float64, downBPS []float64,
	broadcastDur time.Duration) []Result {
	clock := sim.NewClock(seed)
	const propagation = 20 * time.Millisecond
	var upTrace *netem.BandwidthTrace
	if upBPS > 0 {
		upTrace = netem.Constant(upBPS)
	}
	viewers := make([]*viewerSim, len(downBPS))
	for i, bps := range downBPS {
		var tr *netem.BandwidthTrace
		if bps > 0 {
			tr = netem.Constant(bps)
		}
		viewers[i] = newViewerSim(clock, p, tr, propagation, broadcastDur)
	}
	skips := runBroadcast(clock, p, upTrace, propagation, broadcastDur, viewers, nil, nil, nil)
	out := make([]Result, len(viewers))
	for i, v := range viewers {
		out[i] = v.finish()
		out[i].SkippedSegments = skips
	}
	return out
}

// LatencySpread summarizes a viewer population's latency distribution.
type LatencySpread struct {
	Mean, Min, Max time.Duration
	// StdDev is the standard deviation across viewers.
	StdDev time.Duration
}

// Spread computes the population statistics of per-viewer mean
// latencies.
func Spread(results []Result) LatencySpread {
	var s LatencySpread
	if len(results) == 0 {
		return s
	}
	s.Min = time.Duration(1<<62 - 1)
	var sum float64
	for _, r := range results {
		l := r.MeanLatency
		sum += l.Seconds()
		if l < s.Min {
			s.Min = l
		}
		if l > s.Max {
			s.Max = l
		}
	}
	mean := sum / float64(len(results))
	s.Mean = time.Duration(mean * float64(time.Second))
	var varSum float64
	for _, r := range results {
		d := r.MeanLatency.Seconds() - mean
		varSum += d * d
	}
	s.StdDev = time.Duration(math.Sqrt(varSum/float64(len(results))) * float64(time.Second))
	return s
}

// Table2Cell runs the paper's protocol for one platform × condition
// cell: three two-minute broadcasts, averaged (§3.4.1 reports the mean
// of 3 experiments).
func Table2Cell(p Platform, cond Condition) Result {
	var agg Result
	agg.MinLatency = time.Duration(1<<62 - 1)
	const runs = 3
	for i := 0; i < runs; i++ {
		r := MeasureE2E(int64(1000+i), p, cond, 2*time.Minute)
		agg.MeanLatency += r.MeanLatency
		agg.Samples += r.Samples
		agg.SkippedSegments += r.SkippedSegments
		agg.Stalls += r.Stalls
		if r.MinLatency < agg.MinLatency {
			agg.MinLatency = r.MinLatency
		}
		if r.MaxLatency > agg.MaxLatency {
			agg.MaxLatency = r.MaxLatency
		}
		agg.FinalQuality = r.FinalQuality
		agg.BytesDownloaded += r.BytesDownloaded
	}
	agg.BytesDownloaded /= runs
	agg.MeanLatency /= runs
	return agg
}

package live

import (
	"math"
	"time"

	"sperke/internal/hmp"
	"sperke/internal/sphere"
)

// UploadMode selects how the broadcaster reacts to a degraded uplink
// (§3.4.2).
type UploadMode int

// Upload adaptation modes.
const (
	// UploadFixed is today's behaviour: a fixed rate, frames dropped when
	// the uplink cannot keep up (§3.4.1 finding).
	UploadFixed UploadMode = iota
	// UploadQualityReduce lowers the encoding quality of the full
	// panorama — the conventional fallback.
	UploadQualityReduce
	// UploadSpatialFallback keeps the quality but narrows the uploaded
	// horizon (e.g. 360°→180°) around the horizon of interest — the
	// paper's proposal: "for many live events the horizon of interest is
	// oftentimes narrower than full 360°".
	UploadSpatialFallback
)

func (m UploadMode) String() string {
	switch m {
	case UploadQualityReduce:
		return "quality-reduce"
	case UploadSpatialFallback:
		return "spatial-fallback"
	default:
		return "fixed"
	}
}

// HorizonPlan is the spatial-fallback decision: which yaw span to
// upload, centered where.
type HorizonPlan struct {
	// Center is the middle of the uploaded horizon.
	Center sphere.Orientation
	// SpanDeg is the uploaded yaw width in degrees (360 = everything).
	SpanDeg float64
}

// Fraction returns the uploaded share of the panorama.
func (h HorizonPlan) Fraction() float64 { return h.SpanDeg / 360 }

// Covers reports whether a viewer looking at view sees only uploaded
// content (their FoV falls inside the horizon).
func (h HorizonPlan) Covers(view sphere.Orientation, fov sphere.FoV) bool {
	half := h.SpanDeg/2 - fov.Width/2
	if half < 0 {
		return false
	}
	return math.Abs(sphere.NormalizeYaw(view.Yaw-h.Center.Yaw)) <= half
}

// PlanHorizon solves the §3.4.2 open problem pragmatically by combining
// the paper's three suggested signals: a manual hint from the
// broadcaster (the stage direction), the crowd's viewing heatmap (where
// current viewers actually look), and a floor on the span (the horizon
// should be wider than the subject, e.g. the concert stage).
//
// uplinkFraction is the ratio of available uplink to the full-panorama
// rate; a value ≥ 1 means no fallback is needed.
func PlanHorizon(manualHint *sphere.Orientation, heat *hmp.Heatmap, at time.Duration,
	uplinkFraction, minSpanDeg float64) HorizonPlan {
	plan := HorizonPlan{SpanDeg: 360}
	if uplinkFraction >= 1 {
		if manualHint != nil {
			plan.Center = *manualHint
		}
		return plan
	}
	if uplinkFraction < 0 {
		uplinkFraction = 0
	}
	span := 360 * uplinkFraction
	if span < minSpanDeg {
		span = minSpanDeg
	}
	if span > 360 {
		span = 360
	}
	plan.SpanDeg = span
	switch {
	case manualHint != nil:
		plan.Center = *manualHint
	case heat != nil && heat.Intervals() > 0:
		plan.Center = heat.CrowdCenter(at)
	}
	return plan
}

// FallbackOutcome compares what a viewer population experiences under
// one upload mode at one uplink fraction.
type FallbackOutcome struct {
	Mode UploadMode
	// MeanFoVQuality is the average quality fraction (1 = source
	// quality) rendered inside viewers' FoV.
	MeanFoVQuality float64
	// OutsideHorizonFrac is the fraction of view samples landing outside
	// the uploaded horizon (blank/frozen content under spatial
	// fallback).
	OutsideHorizonFrac float64
	// SkippedFrac is the fraction of frames dropped at the uplink
	// (fixed-rate mode under constraint).
	SkippedFrac float64
}

// EvaluateFallback scores an upload mode for a set of viewer
// orientations (sampled from live viewers) at one instant.
// uplinkFraction is available uplink over the source rate.
func EvaluateFallback(mode UploadMode, plan HorizonPlan, uplinkFraction float64,
	views []sphere.Orientation, fov sphere.FoV) FallbackOutcome {
	out := FallbackOutcome{Mode: mode}
	if uplinkFraction > 1 {
		uplinkFraction = 1
	}
	if uplinkFraction < 0 {
		uplinkFraction = 0
	}
	switch mode {
	case UploadFixed:
		// Fixed rate on a constrained uplink drops frames; quality of
		// delivered frames is full but a fraction of time is frozen.
		out.SkippedFrac = 1 - uplinkFraction
		out.MeanFoVQuality = uplinkFraction // effective: full quality × delivered share
	case UploadQualityReduce:
		// The whole panorama is re-encoded to fit: everyone sees reduced
		// quality. Perceived quality falls slightly slower than bitrate
		// (codec efficiency): q ≈ rate^0.7.
		out.MeanFoVQuality = math.Pow(uplinkFraction, 0.7)
	case UploadSpatialFallback:
		// Inside the horizon viewers see full quality; outside they see
		// nothing new.
		if len(views) == 0 {
			out.MeanFoVQuality = 1
			return out
		}
		covered := 0
		for _, v := range views {
			if plan.Covers(v, fov) {
				covered++
			}
		}
		frac := float64(covered) / float64(len(views))
		out.MeanFoVQuality = frac
		out.OutsideHorizonFrac = 1 - frac
	}
	return out
}

// FallbackRun is the outcome of a broadcast that applied an upload
// adaptation mode at the pipeline level.
type FallbackRun struct {
	Result Result
	// UploadedFraction is the mean share of the panorama (spatial mode)
	// or of the source rate (quality mode) that went up the wire.
	UploadedFraction float64
}

// MeasureE2EWithFallback runs the live pipeline with the broadcaster
// applying an upload adaptation mode whenever the configured uplink
// cannot carry the source rate (§3.4.2).
//
// Deprecated: use Measure with Opts{Cond, Fallback}.
func MeasureE2EWithFallback(seed int64, p Platform, cond Condition,
	broadcastDur time.Duration, mode UploadMode, plan HorizonPlan) FallbackRun {
	m := Measure(seed, p, Opts{
		Duration: broadcastDur,
		Cond:     cond,
		Fallback: &FallbackOpts{Mode: mode, Plan: plan},
	})
	return FallbackRun{Result: m.Result, UploadedFraction: m.UploadedFraction}
}

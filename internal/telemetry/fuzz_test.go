package telemetry

import (
	"bytes"
	"testing"

	"sperke/internal/sphere"
	"sperke/internal/trace"
)

// FuzzDecode hardens the telemetry decoder against hostile uploads (the
// collector is an open HTTP endpoint): no panics, and accepted records
// re-encode consistently.
func FuzzDecode(f *testing.F) {
	rec := &Record{
		VideoID: "v", UserID: "u", Rating: 3,
		Context: trace.Context{Pose: trace.Standing, Engaged: 0.5},
		Samples: []trace.Sample{
			{View: sphere.Orientation{Yaw: 10, Pitch: -5}},
			{View: sphere.Orientation{Yaw: 12, Pitch: -4}},
		},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, rec); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("SPTL"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted records re-encode without error and decode again to
		// the same identity fields and sample count.
		var out bytes.Buffer
		if err := Encode(&out, got); err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		again, err := Decode(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if again.VideoID != got.VideoID || again.UserID != got.UserID ||
			len(again.Samples) != len(got.Samples) {
			t.Fatal("double round-trip drifted")
		}
	})
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sperke/internal/hmp"
	"sperke/internal/sphere"
	"sperke/internal/tiling"
	"sperke/internal/trace"
)

// Collector is the §3.2 aggregation service: players POST telemetry
// records, and clients GET per-video crowd heatmaps to guide OOS
// selection and long-horizon prediction.
//
//	POST /t/{video}                      body: one encoded Record
//	GET  /t/{video}/heatmap?chunkms=2000 response: JSON tile probabilities
//	GET  /t/{video}/stats                response: JSON session count etc.
//
// Safe for concurrent use.
type Collector struct {
	// Grid, Projection and FoV define the tile geometry heatmaps are
	// computed over.
	Grid       tiling.Grid
	Projection sphere.Projection
	FoV        sphere.FoV
	// MaxSessionsPerVideo bounds memory; oldest sessions are dropped
	// first. 0 defaults to 1000.
	MaxSessionsPerVideo int

	mu     sync.RWMutex
	traces map[string][]*trace.HeadTrace
	users  map[string]map[string]bool
	mux    *http.ServeMux
	once   sync.Once
}

// NewCollector builds a collector with the given geometry.
func NewCollector(g tiling.Grid, p sphere.Projection, fov sphere.FoV) *Collector {
	return &Collector{
		Grid:       g,
		Projection: p,
		FoV:        fov,
		traces:     make(map[string][]*trace.HeadTrace),
		users:      make(map[string]map[string]bool),
	}
}

func (c *Collector) maxSessions() int {
	if c.MaxSessionsPerVideo <= 0 {
		return 1000
	}
	return c.MaxSessionsPerVideo
}

// Ingest stores one record (the non-HTTP entry point).
func (c *Collector) Ingest(rec *Record) error {
	if rec == nil || rec.VideoID == "" {
		return fmt.Errorf("telemetry: nil or unidentified record")
	}
	if len(rec.Samples) == 0 {
		return fmt.Errorf("telemetry: record has no samples")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.traces[rec.VideoID]
	ts = append(ts, rec.HeadTrace())
	if over := len(ts) - c.maxSessions(); over > 0 {
		ts = ts[over:]
	}
	c.traces[rec.VideoID] = ts
	if c.users[rec.VideoID] == nil {
		c.users[rec.VideoID] = make(map[string]bool)
	}
	c.users[rec.VideoID][rec.UserID] = true
	return nil
}

// Sessions returns the stored session count for a video.
func (c *Collector) Sessions(videoID string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.traces[videoID])
}

// Heatmap aggregates the stored sessions of a video into a crowd
// heatmap over the given chunking. Returns an error when no telemetry
// exists.
func (c *Collector) Heatmap(videoID string, chunkDur, videoDur time.Duration) (*hmp.Heatmap, error) {
	c.mu.RLock()
	sessions := append([]*trace.HeadTrace(nil), c.traces[videoID]...)
	c.mu.RUnlock()
	if len(sessions) == 0 {
		return nil, fmt.Errorf("telemetry: no sessions for video %q", videoID)
	}
	if videoDur <= 0 {
		for _, s := range sessions {
			if d := s.Duration(); d > videoDur {
				videoDur = d
			}
		}
	}
	return hmp.BuildHeatmap(c.Grid, c.Projection, c.FoV, chunkDur, videoDur, sessions), nil
}

func (c *Collector) init() {
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /t/{video}", c.handleIngest)
	c.mux.HandleFunc("GET /t/{video}/heatmap", c.handleHeatmap)
	c.mux.HandleFunc("GET /t/{video}/stats", c.handleStats)
}

// ServeHTTP implements http.Handler.
func (c *Collector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.once.Do(c.init)
	c.mux.ServeHTTP(w, r)
}

func (c *Collector) handleIngest(w http.ResponseWriter, r *http.Request) {
	rec, err := Decode(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if rec.VideoID != r.PathValue("video") {
		http.Error(w, "telemetry: record/path video mismatch", http.StatusBadRequest)
		return
	}
	if err := c.Ingest(rec); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

// HeatmapResponse is the JSON shape of the heatmap endpoint.
type HeatmapResponse struct {
	VideoID   string `json:"videoId"`
	Sessions  int    `json:"sessions"`
	ChunkMs   int64  `json:"chunkMs"`
	Rows      int    `json:"rows"`
	Cols      int    `json:"cols"`
	Intervals int    `json:"intervals"`
	// Prob[i][tile] is the viewing probability of a tile in interval i.
	Prob [][]float64 `json:"prob"`
}

func (c *Collector) handleHeatmap(w http.ResponseWriter, r *http.Request) {
	videoID := r.PathValue("video")
	chunkMs := int64(2000)
	if q := r.URL.Query().Get("chunkms"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil || v <= 0 {
			http.Error(w, "telemetry: bad chunkms", http.StatusBadRequest)
			return
		}
		chunkMs = v
	}
	heat, err := c.Heatmap(videoID, time.Duration(chunkMs)*time.Millisecond, 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	resp := HeatmapResponse{
		VideoID:   videoID,
		Sessions:  c.Sessions(videoID),
		ChunkMs:   chunkMs,
		Rows:      c.Grid.Rows,
		Cols:      c.Grid.Cols,
		Intervals: heat.Intervals(),
		Prob:      make([][]float64, heat.Intervals()),
	}
	for i := range resp.Prob {
		row := make([]float64, c.Grid.Tiles())
		at := time.Duration(i) * time.Duration(chunkMs) * time.Millisecond
		for tile := range row {
			row[tile] = heat.Probability(at, tiling.TileID(tile))
		}
		resp.Prob[i] = row
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (c *Collector) handleStats(w http.ResponseWriter, r *http.Request) {
	videoID := r.PathValue("video")
	c.mu.RLock()
	stats := map[string]int{
		"sessions": len(c.traces[videoID]),
		"users":    len(c.users[videoID]),
	}
	c.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(stats)
}

package telemetry_test

import (
	"bytes"
	"fmt"
	"time"

	"sperke/internal/sphere"
	"sperke/internal/telemetry"
	"sperke/internal/trace"
)

// Example shows the §3.2 record lifecycle: encode a session, decode it
// at the collector, and check the upload stays under the paper's 5 Kbps
// budget.
func Example() {
	head := &trace.HeadTrace{Samples: []trace.Sample{
		{At: 0, View: sphere.Orientation{Yaw: 10}},
		{At: 20 * time.Millisecond, View: sphere.Orientation{Yaw: 11}},
	}}
	rec := telemetry.FromHeadTrace("my-video", "alice",
		trace.Context{Pose: trace.Sitting}, head)

	var wire bytes.Buffer
	if err := telemetry.Encode(&wire, rec); err != nil {
		panic(err)
	}
	back, err := telemetry.Decode(&wire)
	if err != nil {
		panic(err)
	}
	fmt.Printf("decoded %d samples from %q\n", len(back.Samples), back.UserID)
	fmt.Printf("50 Hz stream costs %.1f Kbps (budget: 5)\n",
		telemetry.BitrateBPS(20*time.Millisecond)/1000)
	// Output:
	// decoded 2 samples from "alice"
	// 50 Hz stream costs 2.4 Kbps (budget: 5)
}

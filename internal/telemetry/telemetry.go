// Package telemetry implements the §3.2 data-collection pipeline: the
// player app records head-movement readings at 50 Hz together with
// lightweight context, uploads them in a compact binary format, and a
// collector service aggregates them into the crowd heatmaps HMP and
// rate adaptation consume.
//
// The paper's scaling claim — "uncompressed head movement data at 50 Hz
// is less than 5 Kbps" — is a format property here: each sample is
// yaw/pitch/roll quantized to 0.02° in three int16s (6 bytes), so a
// 50 Hz stream costs 2.4 Kbps before any compression. Tests verify the
// budget.
package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"sperke/internal/sphere"
	"sperke/internal/trace"
)

// Record is one viewing session's telemetry: who watched what, in what
// context, and the 50 Hz head trace.
type Record struct {
	VideoID string
	UserID  string
	Context trace.Context
	// Rating is the §3.2 "user's rating of the video" signal, 0–5.
	Rating uint8
	// SampleInterval is the sensor period; the app records at 50 Hz
	// (20 ms).
	SampleInterval time.Duration
	Samples        []trace.Sample
}

// Wire format, all integers big-endian:
//
//	offset size field
//	0      4    magic "SPTL"
//	4      1    format version (1)
//	5      1    video-ID length v
//	6      1    user-ID length u
//	7      1    context byte (pose<<0 | mode<<2 | mobile<<3 | indoors<<4)
//	8      1    engagement, quantized ×100
//	9      1    rating 0..5
//	10     2    sample interval, milliseconds
//	12     4    sample count n
//	16     v    video ID
//	16+v   u    user ID
//	...    6n   samples: int16 yaw, pitch, roll ×50 (0.02° quanta)
const (
	recordMagic   = "SPTL"
	recordVersion = 1
	headerFixed   = 16
	// quantum is the angle resolution: 0.02°, far below sensor noise.
	quantum = 0.02
	// MaxSamples bounds one record (an hour at 50 Hz).
	MaxSamples = 50 * 3600
)

// Errors.
var (
	ErrBadMagic   = errors.New("telemetry: bad magic")
	ErrBadVersion = errors.New("telemetry: unsupported version")
)

func quantize(deg float64) int16 {
	q := math.Round(deg / quantum)
	if q > math.MaxInt16 {
		q = math.MaxInt16
	}
	if q < math.MinInt16 {
		q = math.MinInt16
	}
	return int16(q)
}

func dequantize(q int16) float64 { return float64(q) * quantum }

// EncodedSize returns the wire size of a record with the given ID
// lengths and sample count.
func EncodedSize(videoID, userID string, samples int) int {
	return headerFixed + len(videoID) + len(userID) + 6*samples
}

// Encode writes the record to w.
func Encode(w io.Writer, r *Record) error {
	if len(r.VideoID) == 0 || len(r.VideoID) > 255 {
		return fmt.Errorf("telemetry: video ID length %d", len(r.VideoID))
	}
	if len(r.UserID) == 0 || len(r.UserID) > 255 {
		return fmt.Errorf("telemetry: user ID length %d", len(r.UserID))
	}
	if len(r.Samples) > MaxSamples {
		return fmt.Errorf("telemetry: %d samples exceed max %d", len(r.Samples), MaxSamples)
	}
	interval := r.SampleInterval
	if interval <= 0 {
		interval = time.Second / trace.SampleRate
	}
	buf := make([]byte, EncodedSize(r.VideoID, r.UserID, len(r.Samples)))
	copy(buf, recordMagic)
	buf[4] = recordVersion
	buf[5] = uint8(len(r.VideoID))
	buf[6] = uint8(len(r.UserID))
	buf[7] = contextByte(r.Context)
	buf[8] = uint8(clamp01(r.Context.Engaged) * 100)
	buf[9] = r.Rating
	binary.BigEndian.PutUint16(buf[10:], uint16(interval/time.Millisecond))
	binary.BigEndian.PutUint32(buf[12:], uint32(len(r.Samples)))
	off := headerFixed
	off += copy(buf[off:], r.VideoID)
	off += copy(buf[off:], r.UserID)
	for _, s := range r.Samples {
		binary.BigEndian.PutUint16(buf[off:], uint16(quantize(s.View.Yaw)))
		binary.BigEndian.PutUint16(buf[off+2:], uint16(quantize(s.View.Pitch)))
		binary.BigEndian.PutUint16(buf[off+4:], uint16(quantize(s.View.Roll)))
		off += 6
	}
	_, err := w.Write(buf)
	return err
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func contextByte(c trace.Context) uint8 {
	b := uint8(c.Pose) & 0x3
	if c.Mode == trace.Headset {
		b |= 1 << 2
	}
	if c.Mobile {
		b |= 1 << 3
	}
	if c.Indoors {
		b |= 1 << 4
	}
	return b
}

func contextFromByte(b uint8, engaged float64) trace.Context {
	c := trace.Context{
		Pose:    trace.Pose(b & 0x3),
		Mobile:  b&(1<<3) != 0,
		Indoors: b&(1<<4) != 0,
		Engaged: engaged,
	}
	if b&(1<<2) != 0 {
		c.Mode = trace.Headset
	}
	return c
}

// Decode reads one record from r.
func Decode(r io.Reader) (*Record, error) {
	fixed := make([]byte, headerFixed)
	if _, err := io.ReadFull(r, fixed); err != nil {
		return nil, err
	}
	if string(fixed[:4]) != recordMagic {
		return nil, ErrBadMagic
	}
	if fixed[4] != recordVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, fixed[4])
	}
	vLen, uLen := int(fixed[5]), int(fixed[6])
	if vLen == 0 || uLen == 0 {
		return nil, fmt.Errorf("telemetry: empty ID")
	}
	n := binary.BigEndian.Uint32(fixed[12:])
	if n > MaxSamples {
		return nil, fmt.Errorf("telemetry: sample count %d exceeds max", n)
	}
	rec := &Record{
		Rating:         fixed[9],
		SampleInterval: time.Duration(binary.BigEndian.Uint16(fixed[10:])) * time.Millisecond,
		Context:        contextFromByte(fixed[7], float64(fixed[8])/100),
	}
	ids := make([]byte, vLen+uLen)
	if _, err := io.ReadFull(r, ids); err != nil {
		return nil, err
	}
	rec.VideoID = string(ids[:vLen])
	rec.UserID = string(ids[vLen:])
	body := make([]byte, 6*int(n))
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	rec.Samples = make([]trace.Sample, n)
	interval := rec.SampleInterval
	if interval <= 0 {
		interval = time.Second / trace.SampleRate
	}
	for i := 0; i < int(n); i++ {
		off := 6 * i
		rec.Samples[i] = trace.Sample{
			At: time.Duration(i) * interval,
			View: sphere.Orientation{
				Yaw:   dequantize(int16(binary.BigEndian.Uint16(body[off:]))),
				Pitch: dequantize(int16(binary.BigEndian.Uint16(body[off+2:]))),
				Roll:  dequantize(int16(binary.BigEndian.Uint16(body[off+4:]))),
			},
		}
	}
	return rec, nil
}

// BitrateBPS returns the steady-state upload rate of a session encoded
// in this format, in bits per second — the figure behind the §3.2
// "less than 5 Kbps" scaling claim.
func BitrateBPS(interval time.Duration) float64 {
	if interval <= 0 {
		interval = time.Second / trace.SampleRate
	}
	perSecond := float64(time.Second) / float64(interval)
	return perSecond * 6 * 8
}

// FromHeadTrace packages a generated head trace as a telemetry record.
func FromHeadTrace(videoID, userID string, ctx trace.Context, h *trace.HeadTrace) *Record {
	rec := &Record{
		VideoID:        videoID,
		UserID:         userID,
		Context:        ctx,
		SampleInterval: time.Second / trace.SampleRate,
		Samples:        h.Samples,
	}
	if len(h.Samples) > 1 {
		rec.SampleInterval = h.Samples[1].At - h.Samples[0].At
	}
	return rec
}

// HeadTrace reconstructs the head trace carried by a record.
func (r *Record) HeadTrace() *trace.HeadTrace {
	return &trace.HeadTrace{Samples: r.Samples}
}

package telemetry

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"sperke/internal/sphere"
	"sperke/internal/trace"
)

func sampleRecord(t *testing.T, n int) *Record {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	att := trace.GenerateAttention(rand.New(rand.NewSource(6)), time.Minute)
	h := trace.Generate(rng, trace.UserProfile{ID: "u", SpeedScale: 1}, att, time.Minute)
	rec := FromHeadTrace("vid-1", "user-1", trace.Context{
		Pose: trace.Lying, Mode: trace.Headset, Mobile: true, Indoors: true, Engaged: 0.8,
	}, h)
	rec.Rating = 4
	if n > 0 && n < len(rec.Samples) {
		rec.Samples = rec.Samples[:n]
	}
	return rec
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rec := sampleRecord(t, 500)
	var buf bytes.Buffer
	if err := Encode(&buf, rec); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != EncodedSize(rec.VideoID, rec.UserID, len(rec.Samples)) {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", buf.Len(),
			EncodedSize(rec.VideoID, rec.UserID, len(rec.Samples)))
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.VideoID != rec.VideoID || got.UserID != rec.UserID || got.Rating != 4 {
		t.Fatalf("identity fields lost: %+v", got)
	}
	if got.Context.Pose != trace.Lying || got.Context.Mode != trace.Headset ||
		!got.Context.Mobile || !got.Context.Indoors {
		t.Fatalf("context lost: %+v", got.Context)
	}
	if got.Context.Engaged < 0.79 || got.Context.Engaged > 0.81 {
		t.Fatalf("engagement %v, want ≈0.8", got.Context.Engaged)
	}
	if len(got.Samples) != len(rec.Samples) {
		t.Fatalf("samples %d, want %d", len(got.Samples), len(rec.Samples))
	}
	// Quantization error bounded by the 0.02° quantum.
	for i := range got.Samples {
		if d := sphere.AngularDistance(got.Samples[i].View, rec.Samples[i].View); d > 0.05 {
			t.Fatalf("sample %d quantization error %v°", i, d)
		}
		if got.Samples[i].At != rec.Samples[i].At {
			t.Fatalf("sample %d timestamp %v, want %v", i, got.Samples[i].At, rec.Samples[i].At)
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, &Record{UserID: "u"}); err == nil {
		t.Fatal("empty video ID accepted")
	}
	if err := Encode(&buf, &Record{VideoID: "v"}); err == nil {
		t.Fatal("empty user ID accepted")
	}
	long := strings.Repeat("x", 300)
	if err := Encode(&buf, &Record{VideoID: long, UserID: "u"}); err == nil {
		t.Fatal("oversized video ID accepted")
	}
	big := &Record{VideoID: "v", UserID: "u", Samples: make([]trace.Sample, MaxSamples+1)}
	if err := Encode(&buf, big); err == nil {
		t.Fatal("oversized sample count accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not telemetry data..."))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	rec := sampleRecord(t, 10)
	var buf bytes.Buffer
	Encode(&buf, rec)
	data := buf.Bytes()
	data[4] = 99
	if _, err := Decode(bytes.NewReader(data)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
	// Truncations.
	Encode(&buf, rec)
	full := buf.Bytes()
	for _, cut := range []int{3, headerFixed - 1, headerFixed + 2, len(full) - 3} {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBitrateUnderPaperBudget(t *testing.T) {
	// The §3.2 claim: 50 Hz head movement telemetry < 5 Kbps.
	bps := BitrateBPS(time.Second / 50)
	if bps >= 5000 {
		t.Fatalf("50 Hz telemetry costs %.0f bps, paper budget is 5 Kbps", bps)
	}
	if bps <= 0 {
		t.Fatal("zero bitrate")
	}
	// A real encoded minute matches the analytic rate (header amortized).
	rec := sampleRecord(t, 0)
	var buf bytes.Buffer
	if err := Encode(&buf, rec); err != nil {
		t.Fatal(err)
	}
	seconds := rec.Samples[len(rec.Samples)-1].At.Seconds()
	measured := float64(buf.Len()) * 8 / seconds
	if measured >= 5000 {
		t.Fatalf("measured %.0f bps for a %.0fs session", measured, seconds)
	}
}

func TestHeadTraceReconstruction(t *testing.T) {
	rec := sampleRecord(t, 100)
	h := rec.HeadTrace()
	if len(h.Samples) != 100 {
		t.Fatalf("reconstructed %d samples", len(h.Samples))
	}
	if h.Duration() != rec.Samples[99].At {
		t.Fatalf("duration %v", h.Duration())
	}
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sperke/internal/sphere"
	"sperke/internal/tiling"
	"sperke/internal/trace"
)

func testCollector() *Collector {
	return NewCollector(tiling.GridCellular, sphere.Equirectangular{}, sphere.DefaultFoV)
}

func postRecord(t *testing.T, srv *httptest.Server, rec *Record) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, rec); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/t/"+rec.VideoID, "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func crowdRecords(t *testing.T, n int) []*Record {
	t.Helper()
	att := trace.GenerateAttention(rand.New(rand.NewSource(31)), 30*time.Second)
	pop := trace.NewPopulation(rand.New(rand.NewSource(32)), n)
	out := make([]*Record, n)
	for i, u := range pop.Users {
		h := trace.Generate(rand.New(rand.NewSource(int64(40+i))), u, att, 30*time.Second)
		out[i] = FromHeadTrace("vid-9", u.ID, u.Context, h)
	}
	return out
}

func TestCollectorIngestAndStats(t *testing.T) {
	c := testCollector()
	srv := httptest.NewServer(c)
	defer srv.Close()

	for _, rec := range crowdRecords(t, 5) {
		if resp := postRecord(t, srv, rec); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
	if c.Sessions("vid-9") != 5 {
		t.Fatalf("Sessions = %d", c.Sessions("vid-9"))
	}
	resp, err := http.Get(srv.URL + "/t/vid-9/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["sessions"] != 5 || stats["users"] != 5 {
		t.Fatalf("stats %v", stats)
	}
}

func TestCollectorHeatmapEndpoint(t *testing.T) {
	c := testCollector()
	srv := httptest.NewServer(c)
	defer srv.Close()
	for _, rec := range crowdRecords(t, 8) {
		postRecord(t, srv, rec)
	}
	resp, err := http.Get(srv.URL + "/t/vid-9/heatmap?chunkms=2000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var hm HeatmapResponse
	if err := json.NewDecoder(resp.Body).Decode(&hm); err != nil {
		t.Fatal(err)
	}
	if hm.Sessions != 8 || hm.Rows != 4 || hm.Cols != 6 {
		t.Fatalf("heatmap meta %+v", hm)
	}
	if hm.Intervals == 0 || len(hm.Prob) != hm.Intervals {
		t.Fatalf("heatmap intervals %d, rows %d", hm.Intervals, len(hm.Prob))
	}
	// Probabilities valid and someone looks somewhere each interval.
	for i, row := range hm.Prob {
		var max float64
		for _, p := range row {
			if p < 0 || p > 1 {
				t.Fatalf("probability %v out of range", p)
			}
			if p > max {
				max = p
			}
		}
		if max == 0 {
			t.Fatalf("interval %d entirely unwatched", i)
		}
	}
}

func TestCollectorHeatmapNoData(t *testing.T) {
	srv := httptest.NewServer(testCollector())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/t/ghost/heatmap")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d for unknown video", resp.StatusCode)
	}
}

func TestCollectorRejectsBadUploads(t *testing.T) {
	srv := httptest.NewServer(testCollector())
	defer srv.Close()
	// Garbage body.
	resp, err := http.Post(srv.URL+"/t/vid-9", "application/octet-stream",
		bytes.NewReader([]byte("garbage")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage accepted: %d", resp.StatusCode)
	}
	// Path/record mismatch.
	rec := crowdRecords(t, 1)[0]
	var buf bytes.Buffer
	Encode(&buf, rec)
	resp, err = http.Post(srv.URL+"/t/other-video", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched video accepted: %d", resp.StatusCode)
	}
}

func TestCollectorBoundsSessions(t *testing.T) {
	c := testCollector()
	c.MaxSessionsPerVideo = 3
	for _, rec := range crowdRecords(t, 6) {
		if err := c.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Sessions("vid-9"); got != 3 {
		t.Fatalf("Sessions = %d, want bounded 3", got)
	}
}

func TestCollectorHeatmapMatchesDirectBuild(t *testing.T) {
	c := testCollector()
	recs := crowdRecords(t, 6)
	for _, rec := range recs {
		if err := c.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	heat, err := c.Heatmap("vid-9", 2*time.Second, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The collector's heatmap must reflect the quantized traces it
	// stored: spot-check that top tiles carry meaningful probability.
	top := heat.TopTiles(10*time.Second, 1)
	if len(top) == 0 || heat.Probability(10*time.Second, top[0]) < 0.3 {
		t.Fatalf("aggregated heatmap looks empty: top %v", top)
	}
}

func TestIngestValidation(t *testing.T) {
	c := testCollector()
	if err := c.Ingest(nil); err == nil {
		t.Fatal("nil record accepted")
	}
	if err := c.Ingest(&Record{VideoID: "x"}); err == nil {
		t.Fatal("empty record accepted")
	}
}

func TestCollectorConcurrentIngest(t *testing.T) {
	c := testCollector()
	recs := crowdRecords(t, 12)
	done := make(chan struct{}, len(recs)+2)
	for _, rec := range recs {
		rec := rec
		go func() {
			c.Ingest(rec)
			done <- struct{}{}
		}()
	}
	// Concurrent readers while ingesting.
	for g := 0; g < 2; g++ {
		go func() {
			for i := 0; i < 10; i++ {
				c.Sessions("vid-9")
				c.Heatmap("vid-9", 2*time.Second, 30*time.Second)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < len(recs)+2; i++ {
		<-done
	}
	if c.Sessions("vid-9") != 12 {
		t.Fatalf("Sessions = %d after concurrent ingest", c.Sessions("vid-9"))
	}
}
